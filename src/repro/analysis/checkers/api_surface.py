"""RL500/RL501/RL502: the public surface may not drift from its snapshot.

``repro.api`` is the deprecation-policy boundary: its exports are
pinned by the reviewed ``PUBLIC_API`` snapshot in
``tests/test_public_api.py``, and the frozen config dataclasses
(``BrokerConfig`` and friends) are constructor contracts pinned by the
``CONFIG_FIELDS`` snapshot next to it. The runtime tests already
compare the *imported* objects; this checker compares the *source*, so
drift is caught by ``repro lint`` (and the CI static-analysis job)
without importing the package — and so a broken ``__all__`` entry
(RL501) is caught even on modules no test happens to star-import.

* **RL500** — ``repro/api.py`` ``__all__`` differs from ``PUBLIC_API``,
  or the top-level ``repro/__init__.py`` exports a name outside it.
* **RL501** — any module whose ``__all__`` names a symbol the module
  never binds (a latent ``AttributeError`` for star-importers).
* **RL502** — a config dataclass listed in ``CONFIG_FIELDS`` has a
  different field list (names or order — order is the positional
  constructor signature) than the snapshot.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import Module

__all__ = ["check"]

SNAPSHOT_REL = "tests/test_public_api.py"
FACADE_SUFFIX = "src/repro/api.py"
PACKAGE_INIT_SUFFIX = "src/repro/__init__.py"


def _string_list(node: ast.expr) -> list[str] | None:
    if isinstance(node, (ast.List, ast.Tuple)) and all(
        isinstance(e, ast.Constant) and isinstance(e.value, str)
        for e in node.elts
    ):
        return [e.value for e in node.elts]  # type: ignore[union-attr]
    return None


def _assigned_lists(tree: ast.Module, target_name: str) -> list[list[str]]:
    out: list[list[str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == target_name:
                    value = _string_list(node.value)
                    if value is not None:
                        out.append(value)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == target_name:
                value = _string_list(node.value)
                if value is not None:
                    out.append(value)
    return out


def _module_all(module: Module) -> list[str] | None:
    """The module's literal ``__all__`` (None when absent or dynamic)."""
    parts = _assigned_lists(module.tree, "__all__")
    if not parts:
        return None
    return [name for part in parts for name in part]


def _snapshot_dict(tree: ast.Module, target_name: str) -> dict[str, list[str]] | None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (isinstance(target, ast.Name) and target.id == target_name):
                continue
            if not isinstance(node.value, ast.Dict):
                return None
            out: dict[str, list[str]] = {}
            for key, value in zip(node.value.keys, node.value.values, strict=True):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    return None
                fields = _string_list(value)
                if fields is None:
                    return None
                out[key.value] = fields
            return out
    return None


def _toplevel_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level; bool = saw a star import."""
    names: set[str] = set()
    star = False

    def scan(body: list[ast.stmt]) -> None:
        nonlocal star
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _bind_target(target)
            elif isinstance(stmt, ast.AnnAssign):
                _bind_target(stmt.target)
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".", 1)[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                scan(stmt.body)
                scan(stmt.orelse)
                for handler in getattr(stmt, "handlers", []):
                    scan(handler.body)
                scan(getattr(stmt, "finalbody", []))

    def _bind_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                _bind_target(elt)

    scan(tree.body)
    return names, star


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    fields: list[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        annotation = stmt.annotation
        text = ast.unparse(annotation)
        if "ClassVar" in text:
            continue
        fields.append(target.id)
    return fields


def check(modules: list[Module], root: Path) -> list[Finding]:
    findings: list[Finding] = []
    snapshot_path = root / SNAPSHOT_REL
    try:
        snapshot_tree = ast.parse(
            snapshot_path.read_text(encoding="utf-8"), filename=str(snapshot_path)
        )
    except (OSError, SyntaxError):
        findings.append(
            Finding(
                path=SNAPSHOT_REL,
                line=1,
                rule="RL500",
                message="API snapshot file is missing or unparsable; the "
                "public surface is unpinned",
            )
        )
        snapshot_tree = None

    facade = next((m for m in modules if m.rel.endswith(FACADE_SUFFIX)), None)
    package_init = next(
        (m for m in modules if m.rel.endswith(PACKAGE_INIT_SUFFIX)), None
    )

    if snapshot_tree is not None:
        public_api = _assigned_lists(snapshot_tree, "PUBLIC_API")
        snapshot = public_api[0] if public_api else None
        if snapshot is None:
            findings.append(
                Finding(
                    path=SNAPSHOT_REL,
                    line=1,
                    rule="RL500",
                    message="PUBLIC_API snapshot list not found",
                )
            )
        elif facade is not None:
            facade_all = _module_all(facade)
            if facade_all is None:
                findings.append(
                    Finding(
                        path=facade.rel,
                        line=1,
                        rule="RL500",
                        message="repro.api has no literal __all__ to pin",
                    )
                )
            elif facade_all != snapshot:
                missing = sorted(set(snapshot) - set(facade_all))
                extra = sorted(set(facade_all) - set(snapshot))
                detail = []
                if missing:
                    detail.append(f"missing from facade: {', '.join(missing)}")
                if extra:
                    detail.append(f"not in snapshot: {', '.join(extra)}")
                if not detail:
                    detail.append("same names, different order")
                findings.append(
                    Finding(
                        path=facade.rel,
                        line=1,
                        rule="RL500",
                        message=(
                            "repro.api.__all__ drifts from the PUBLIC_API "
                            f"snapshot ({'; '.join(detail)})"
                        ),
                    )
                )
        if snapshot is not None and package_init is not None:
            init_all = _module_all(package_init)
            if init_all is not None:
                outside = sorted(
                    set(init_all) - {"__version__"} - set(snapshot)
                )
                if outside:
                    findings.append(
                        Finding(
                            path=package_init.rel,
                            line=1,
                            rule="RL500",
                            message=(
                                "top-level repro exports outside the "
                                f"PUBLIC_API snapshot: {', '.join(outside)}"
                            ),
                        )
                    )

        config_fields = _snapshot_dict(snapshot_tree, "CONFIG_FIELDS")
        if config_fields is None:
            findings.append(
                Finding(
                    path=SNAPSHOT_REL,
                    line=1,
                    rule="RL502",
                    message="CONFIG_FIELDS snapshot dict not found; frozen "
                    "config surfaces are unpinned",
                )
            )
        else:
            classes: dict[str, tuple[Module, ast.ClassDef]] = {}
            for module in modules:
                for node in module.tree.body:
                    if isinstance(node, ast.ClassDef):
                        classes.setdefault(node.name, (module, node))
            for cls_name, expected in config_fields.items():
                entry = classes.get(cls_name)
                if entry is None:
                    findings.append(
                        Finding(
                            path=SNAPSHOT_REL,
                            line=1,
                            rule="RL502",
                            message=(
                                f"CONFIG_FIELDS pins unknown class {cls_name}"
                            ),
                        )
                    )
                    continue
                module, node = entry
                actual = _dataclass_fields(node)
                if actual != expected:
                    findings.append(
                        Finding(
                            path=module.rel,
                            line=node.lineno,
                            rule="RL502",
                            message=(
                                f"{cls_name} fields {actual} drift from the "
                                f"CONFIG_FIELDS snapshot {expected}"
                            ),
                        )
                    )

    for module in modules:
        module_all = _module_all(module)
        if module_all is None:
            continue
        bindings, star = _toplevel_bindings(module.tree)
        if star:
            continue  # cannot verify through a star import
        for name in module_all:
            if name not in bindings:
                findings.append(
                    Finding(
                        path=module.rel,
                        line=1,
                        rule="RL501",
                        message=f"__all__ names '{name}' but the module "
                        "never defines or imports it",
                    )
                )
    return findings
