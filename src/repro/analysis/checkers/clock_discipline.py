"""RL300/RL301: all timing flows through the injectable Clock.

Deterministic fault injection (:class:`repro.broker.faults.FaultPlan`)
and the degraded-mode latency budget only work because every duration,
deadline, and sleep in the system reads the same injectable
:class:`repro.obs.clock.Clock`. One stray ``time.monotonic()`` splits
the timeline in two — a ``FakeClock`` test advances one clock while the
stray call reads the other — and the suite goes flaky in exactly the
way PR-4's review had to chase down by hand.

The only module allowed to touch :mod:`time` is
``src/repro/obs/clock.py`` (the boundary itself). Flagged everywhere
else in ``src/``:

* any use of a timing ``time.*`` attribute (``time``, ``monotonic``,
  ``sleep``, ``perf_counter`` and their ``_ns`` variants), whether
  called or passed around as a callable, and ``from time import`` of
  the same names (RL300);
* ``datetime.now()`` / ``datetime.utcnow()`` (RL301) — wall-clock
  timestamps come from :func:`repro.obs.clock.wall_time`.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import Module

__all__ = ["check", "BANNED_TIME_ATTRS"]

BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "sleep",
        "perf_counter",
        "perf_counter_ns",
    }
)
BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: The single module permitted to import :mod:`time` directly.
CLOCK_MODULE_SUFFIX = "repro/obs/clock.py"


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: Module) -> None:
        self.module = module
        self.findings: list[Finding] = []
        #: local aliases of the ``time`` module ("time", "t", ...)
        self.time_aliases: set[str] = set()
        #: local aliases of datetime.datetime ("datetime", "dt", ...)
        self.datetime_aliases: set[str] = set()

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.module.rel,
                line=line,
                rule=rule,
                message=message,
                symbol=self.module.symbol_at(line),
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self.time_aliases.add(alias.asname or "time")
            if alias.name == "datetime":
                # ``import datetime`` -> usages look like
                # ``datetime.datetime.now``; track the module alias too.
                self.datetime_aliases.add(alias.asname or "datetime")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in BANNED_TIME_ATTRS:
                    self._emit(
                        node,
                        "RL300",
                        f"from time import {alias.name}: timing must go "
                        "through repro.obs.clock.Clock",
                    )
        if node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self.datetime_aliases.add(alias.asname or "datetime")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name):
            if value.id in self.time_aliases and node.attr in BANNED_TIME_ATTRS:
                self._emit(
                    node,
                    "RL300",
                    f"direct time.{node.attr} bypasses the injectable "
                    "Clock (use repro.obs.clock)",
                )
            elif (
                value.id in self.datetime_aliases
                and node.attr in BANNED_DATETIME_ATTRS
            ):
                self._emit(
                    node,
                    "RL301",
                    f"datetime.{node.attr}() bypasses the injectable "
                    "Clock (use repro.obs.clock.wall_time)",
                )
        elif (
            isinstance(value, ast.Attribute)
            and value.attr == "datetime"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.datetime_aliases
            and node.attr in BANNED_DATETIME_ATTRS
        ):
            self._emit(
                node,
                "RL301",
                f"datetime.datetime.{node.attr}() bypasses the injectable "
                "Clock (use repro.obs.clock.wall_time)",
            )
        self.generic_visit(node)


def check(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        if module.rel.endswith(CLOCK_MODULE_SUFFIX):
            continue
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
