"""RL600/RL601/RL602: reproducible scores need reproducible iteration.

The reproduction's headline guarantees are all bit-exactness claims:
scalar vs. kernel parity within a documented tolerance (PR 7),
byte-identical WAL frames across reruns (PR 8), approximate ⊆ exact
anchors (PR 9). Each one dies quietly the moment an unordered
collection decides the order of a float summation, a serialized frame,
or a delivered batch — and Python makes that a one-character mistake
(``for t in terms`` where ``terms`` is a ``set``).

* **RL600** — an unseeded randomness source: ``random.<fn>()`` /
  ``np.random.<fn>()`` module-level calls, or ``random.Random()`` /
  ``np.random.default_rng()`` / ``RandomState()`` constructed without a
  seed argument. Seed-pinned construction (``random.Random(seed)``,
  ``default_rng(self.seed)``) is the sanctioned idiom; instance methods
  on such generators are not flagged (the instance carries the seed).
* **RL601** — iterating a set-typed expression (literal, ``set()`` /
  ``frozenset()`` call, set comprehension, set algebra, or a local
  whose reaching definitions are all set-typed) where the iteration
  order can escape: the loop body appends/extends a sequence, writes,
  serializes, journals, yields, or delivers; or the set is materialized
  directly by ``list()`` / ``tuple()`` / ``np.array`` / ``np.fromiter``
  / ``join``. An intervening ``sorted(...)`` (or any order-insensitive
  consumer — ``set``, ``sum``, ``min``, ``max``, ``len``, ``any``,
  ``all``, ``frozenset``) silences it.
* **RL602** — float-accumulation order: an augmented ``+=``/``*=`` on a
  scalar accumulator inside a loop over a set-typed iterable, or
  ``sum(...)`` over a set-typed argument. Scoped to ``semantics/`` and
  ``core/``, where accumulated floats are score material and summation
  order is exactly the kernel-parity contract.

Dict iteration (``.keys()`` / ``.values()`` / ``.items()``) is
deliberately *not* flagged: dicts preserve insertion order, so a dict
built deterministically iterates deterministically — the repo relies on
that pervasively and it is sound.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow import ReachingDefs, build_cfg
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, Module

__all__ = ["check", "ORDER_SINK_NAMES", "UNSEEDED_FACTORIES"]

#: Module-level functions on ``random`` / ``np.random`` that read the
#: shared, unseeded global generator.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "rand",
        "randn",
        "bytes",
        "permutation",
        "standard_normal",
    }
)

#: Generator constructors that are deterministic only when seeded.
UNSEEDED_FACTORIES = frozenset({"Random", "default_rng", "RandomState", "seed"})

#: Method names whose call consumes iteration order: appending to a
#: sequence, serializing, journaling, writing, delivering.
ORDER_SINK_NAMES = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "write",
        "writelines",
        "send",
        "put",
        "dump",
        "dumps",
        "pack",
        "publish",
        "dispatch",
        "deliver",
        "record",
        "join",
    }
)

#: Call names that materialize their argument in iteration order.
MATERIALIZERS = frozenset(
    {"list", "tuple", "array", "fromiter", "concatenate", "stack", "hstack"}
)

#: Consumers for which iteration order provably cannot matter.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "len",
        "min",
        "max",
        "any",
        "all",
        "dict",
        "Counter",
        "unique",
    }
)

#: RL602 applies where accumulated floats are score material. Matched
#: by path segment (not a root-relative prefix) so fixture trees lint
#: identically whichever root the run was anchored at.
FLOAT_ACCUMULATION_SCOPES = ("repro/semantics/", "repro/core/")


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _receiver_name(expr: ast.expr) -> str | None:
    """The immediate receiver identifier of an attribute chain."""
    if isinstance(expr, ast.Attribute):
        value = expr.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


class _SetTypes:
    """Local set-typedness inference for one function body."""

    def __init__(self, fn: FunctionInfo) -> None:
        self._cfg = build_cfg(fn.node)
        self._reaching = ReachingDefs(self._cfg)

    def is_set_expr(self, expr: ast.expr, at: ast.stmt, depth: int = 0) -> bool:
        """Is ``expr`` statically a set/frozenset in this function?"""
        if depth > 4:
            return False
        if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
            return True
        if isinstance(expr, ast.Call):
            name = _terminal(expr.func)
            if name in {"set", "frozenset"}:
                return True
            if name in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            } and isinstance(expr.func, ast.Attribute):
                return self.is_set_expr(expr.func.value, at, depth + 1)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(expr.left, at, depth + 1) or self.is_set_expr(
                expr.right, at, depth + 1
            )
        if isinstance(expr, ast.Name):
            block = self._cfg.block_of_stmt.get(id(at))
            if block is None:
                return False
            defs = self._reaching.reaching(block, at, expr.id)
            if not defs:
                return False
            typed = [d for d in defs if d.value is not None]
            if not typed:
                # Annotated-but-unvalued or unpacking defs: trust an
                # explicit ``: set[...]`` annotation when present.
                return any(
                    isinstance(d.stmt, ast.AnnAssign)
                    and _annotation_is_set(d.stmt.annotation)
                    for d in defs
                )
            return all(
                self.is_set_expr(d.value, d.stmt, depth + 1)
                for d in typed
                if d.value is not None
            )
        return False


def _annotation_is_set(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    terminal = _terminal(annotation)
    return terminal in {"set", "frozenset", "Set", "FrozenSet"}


def _walk_shallow(node: ast.AST) -> list[ast.AST]:
    """Walk without descending into nested function definitions."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if cur is not node and isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


class _FunctionChecker:
    def __init__(self, fn: FunctionInfo, module: Module) -> None:
        self.fn = fn
        self.module = module
        self.findings: list[Finding] = []
        self._types: _SetTypes | None = None
        #: parent map for consumer lookups, built lazily.
        self._parents: dict[int, ast.AST] | None = None

    # -- shared lazy state -------------------------------------------------

    @property
    def types(self) -> _SetTypes:
        if self._types is None:
            self._types = _SetTypes(self.fn)
        return self._types

    @property
    def parents(self) -> dict[int, ast.AST]:
        if self._parents is None:
            self._parents = {}
            for node in _walk_shallow(self.fn.node):
                for child in ast.iter_child_nodes(node):
                    self._parents[id(child)] = node
        return self._parents

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", self.fn.node.lineno)
        self.findings.append(
            Finding(
                path=self.module.rel,
                line=line,
                rule=rule,
                message=message,
                symbol=self.fn.qualname,
            )
        )

    # -- RL600 -------------------------------------------------------------

    def check_random(self, random_aliases: set[str], np_aliases: set[str]) -> None:
        for node in _walk_shallow(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            recv = func.value
            is_random_module = isinstance(recv, ast.Name) and recv.id in random_aliases
            is_np_random = (
                isinstance(recv, ast.Attribute)
                and recv.attr == "random"
                and isinstance(recv.value, ast.Name)
                and recv.value.id in np_aliases
            ) or (isinstance(recv, ast.Name) and recv.id == "nprandom")
            if not (is_random_module or is_np_random):
                continue
            source = "np.random" if is_np_random else "random"
            if func.attr in UNSEEDED_FACTORIES:
                if not node.args and not node.keywords:
                    self._emit(
                        node,
                        "RL600",
                        f"{source}.{func.attr}() without a seed: scores and "
                        "replay become run-dependent (pin a seed)",
                    )
            elif func.attr in GLOBAL_RANDOM_FNS:
                self._emit(
                    node,
                    "RL600",
                    f"{source}.{func.attr}() reads the global unseeded "
                    "generator (construct a seeded instance instead)",
                )

    # -- RL601 / RL602 -----------------------------------------------------

    def _sink_in_loop_body(self, loop: ast.For) -> tuple[str, int] | None:
        """First order-sensitive operation in the loop body, if any."""
        for stmt in loop.body:
            for node in _walk_shallow(stmt):
                if isinstance(node, ast.Call):
                    name = _terminal(node.func)
                    if name in ORDER_SINK_NAMES or (
                        name is not None
                        and (name.startswith("log_") or name.startswith("journal"))
                    ):
                        return (f"{name}()", node.lineno)
                elif isinstance(node, ast.Yield) or isinstance(node, ast.YieldFrom):
                    return ("yield", node.lineno)
        return None

    def check_set_flow(self, *, accumulation_scope: bool) -> None:
        for node in _walk_shallow(self.fn.node):
            if isinstance(node, ast.For):
                self._check_for(node, accumulation_scope=accumulation_scope)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                self._check_comprehension(node)
            elif isinstance(node, ast.Call):
                self._check_materializer(node)
                if accumulation_scope:
                    self._check_sum(node)

    def _enclosing_stmt(self, node: ast.AST) -> ast.stmt | None:
        cur: ast.AST | None = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = self.parents.get(id(cur))
        return cur

    def _is_set_iterable(self, expr: ast.expr, near: ast.AST) -> bool:
        at = self._enclosing_stmt(near)
        if at is None:
            return False
        return self.types.is_set_expr(expr, at)

    def _check_for(self, loop: ast.For, *, accumulation_scope: bool) -> None:
        if not self._is_set_iterable(loop.iter, loop):
            return
        sink = self._sink_in_loop_body(loop)
        if sink is not None:
            label, line = sink
            self._emit(
                loop,
                "RL601",
                f"iterating a set feeds {label} at line {line}: order "
                "escapes into output (iterate sorted(...) or a stable key)",
            )
        if accumulation_scope:
            for stmt in loop.body:
                for node in _walk_shallow(stmt):
                    if (
                        isinstance(node, ast.AugAssign)
                        and isinstance(node.op, (ast.Add, ast.Mult))
                        and isinstance(node.target, ast.Name)
                    ):
                        self._emit(
                            node,
                            "RL602",
                            f"accumulating into {node.target.id!r} over a set: "
                            "float summation order is unspecified (iterate "
                            "sorted(...) to pin it)",
                        )

    def _consumer_name(self, node: ast.AST) -> str | None:
        parent = self.parents.get(id(node))
        if isinstance(parent, ast.Call):
            return _terminal(parent.func)
        return None

    def _check_comprehension(
        self, comp: ast.ListComp | ast.GeneratorExp
    ) -> None:
        first = comp.generators[0]
        if not self._is_set_iterable(first.iter, comp):
            return
        consumer = self._consumer_name(comp)
        if consumer in ORDER_INSENSITIVE_CONSUMERS or consumer == "sum":
            # sum over floats is RL602's concern, handled at the call.
            return
        kind = "list" if isinstance(comp, ast.ListComp) else "generator"
        self._emit(
            comp,
            "RL601",
            f"{kind} comprehension over a set materializes iteration "
            "order (wrap the iterable in sorted(...))",
        )

    def _check_materializer(self, call: ast.Call) -> None:
        name = _terminal(call.func)
        if name not in MATERIALIZERS or not call.args:
            return
        if self._is_set_iterable(call.args[0], call):
            self._emit(
                call,
                "RL601",
                f"{name}() materializes a set in iteration order (wrap "
                "the argument in sorted(...))",
            )

    def _check_sum(self, call: ast.Call) -> None:
        if _terminal(call.func) != "sum" or not call.args:
            return
        arg = call.args[0]
        if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
            if self._is_set_iterable(arg.generators[0].iter, call):
                self._emit(
                    call,
                    "RL602",
                    "sum() over a set-driven generator: float summation "
                    "order is unspecified (sum over sorted(...))",
                )
        elif self._is_set_iterable(arg, call):
            self._emit(
                call,
                "RL602",
                "sum() over a set: float summation order is unspecified "
                "(sum over sorted(...))",
            )


def _module_aliases(module: Module) -> tuple[set[str], set[str]]:
    """(aliases of the ``random`` module, aliases of numpy)."""
    random_aliases: set[str] = set()
    np_aliases: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                if alias.name == "numpy":
                    np_aliases.add(alias.asname or "numpy")
    return random_aliases, np_aliases


def check(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        random_aliases, np_aliases = _module_aliases(module)
        accumulation_scope = any(
            scope in module.rel for scope in FLOAT_ACCUMULATION_SCOPES
        )
        for fn in module.functions:
            checker = _FunctionChecker(fn, module)
            if random_aliases or np_aliases:
                checker.check_random(random_aliases, np_aliases)
            checker.check_set_flow(accumulation_scope=accumulation_scope)
            findings.extend(checker.findings)
    return findings
