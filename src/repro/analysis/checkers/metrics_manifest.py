"""RL400/RL401: every registered metric name is declared in the manifest.

PR-4's review found a gauge (``reliability.breakers_open``) backed by a
hand-maintained mirror counter that had drifted from the state it
claimed to summarize. The structural fix is a single canonical manifest
(:mod:`repro.obs.manifest`): every ``counter(...)`` / ``gauge(...)`` /
``histogram(...)`` registration in ``src/`` must use a name declared
there, with the matching instrument kind. A metric that is not in the
manifest is either undocumented (operators cannot find it) or a typo
silently creating a *second* time series next to the real one — the
modern form of the mirror-counter bug.

* **RL400** — literal metric name absent from the manifest, or
  registered with a different kind than declared.
* **RL401** — metric registered under a dynamic name the checker cannot
  verify. F-strings with a literal head that lands inside a declared
  wildcard family (``stage.*``, ``space.cache.*``) are accepted;
  anything else needs a manifest family or an allowlist entry.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping

from repro.analysis.findings import Finding
from repro.analysis.project import Module

__all__ = ["check", "REGISTRY_METHODS"]

REGISTRY_METHODS: Mapping[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: Modules that define or re-export the registry API itself; calls in
#: them are machinery, not metric registrations.
EXEMPT_SUFFIXES = ("repro/obs/registry.py", "repro/obs/manifest.py")


def _literal_head(node: ast.JoinedStr) -> str:
    head = ""
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            head += part.value
        else:
            break
    return head


def check(
    modules: list[Module],
    exact: Mapping[str, str],
    wildcards: Mapping[str, str],
) -> list[Finding]:
    """``exact`` maps full metric names to kinds; ``wildcards`` maps
    declared family prefixes (``"stage."``) to kinds."""
    findings: list[Finding] = []
    for module in modules:
        if module.rel.endswith(EXEMPT_SUFFIXES):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            kind = REGISTRY_METHODS.get(func.attr)
            if kind is None or not node.args:
                continue
            name_arg = node.args[0]
            symbol = module.symbol_at(node.lineno)
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                name = name_arg.value
                declared = exact.get(name)
                if declared is None:
                    family = next(
                        (k for p, k in wildcards.items() if name.startswith(p)),
                        None,
                    )
                    if family == kind:
                        continue
                    findings.append(
                        Finding(
                            path=module.rel,
                            line=node.lineno,
                            rule="RL400",
                            message=(
                                f"metric '{name}' ({kind}) is not declared "
                                "in repro.obs.manifest"
                            ),
                            symbol=symbol,
                        )
                    )
                elif declared != kind:
                    findings.append(
                        Finding(
                            path=module.rel,
                            line=node.lineno,
                            rule="RL400",
                            message=(
                                f"metric '{name}' registered as {kind} but "
                                f"declared as {declared} in the manifest"
                            ),
                            symbol=symbol,
                        )
                    )
            elif isinstance(name_arg, ast.JoinedStr):
                head = _literal_head(name_arg)
                family = next(
                    (k for p, k in wildcards.items() if head.startswith(p)),
                    None,
                )
                if head and family == kind:
                    continue
                findings.append(
                    Finding(
                        path=module.rel,
                        line=node.lineno,
                        rule="RL401",
                        message=(
                            f"dynamic metric name (f-string head '{head}') "
                            f"does not match a declared {kind} family in "
                            "repro.obs.manifest"
                        ),
                        symbol=symbol,
                    )
                )
            else:
                findings.append(
                    Finding(
                        path=module.rel,
                        line=node.lineno,
                        rule="RL401",
                        message=(
                            f"metric name for {kind}() is not a literal; "
                            "the manifest cannot verify it"
                        ),
                        symbol=symbol,
                    )
                )
    return findings
