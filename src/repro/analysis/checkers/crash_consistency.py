"""RL700/RL701/RL702: the write-ahead contract, statically.

PR 8's recovery guarantee is a protocol, not a property of any single
function: every mutation of journaled broker state is preceded (or on
the same straight-line path, followed) by the matching
``BrokerDurability.log_*`` record, ``SimulatedCrash`` derives from
``BaseException`` precisely so no ordinary handler can absorb a
scripted death, and all fsync policy decisions live in one file. Each
clause is one refactor away from silently breaking replay parity, and
the hypothesis crash suites only catch the breakage when a kill offset
happens to land in the new window.

* **RL700** — a mutation of journaled broker state (subscriber table,
  replay ring, sequence counter, id counter, dead-letter queue) with no
  covering journal call: no ``log_*`` call dominates or post-dominates
  the mutation inside the same function. The CFG is built with the
  ``durability``/``log`` feature guards collapsed (the rule judges the
  durable configuration — without a journal there is nothing to
  protect) and without exception edges (a crash mid-function is exactly
  what recovery replays; the invariant is about the *normal* path
  ordering). ``__init__`` and ``*restore*`` functions are exempt: the
  first builds empty state, the second rebuilds state *from* the
  journal.
* **RL701** — a bare ``except:`` or ``except BaseException:`` whose
  body can complete without re-raising. Such a handler absorbs
  ``SimulatedCrash`` (and ``KeyboardInterrupt``), turning a scripted
  broker death into silent continuation — the crash suites then test
  nothing. An explicit ``except SimulatedCrash:`` is not flagged:
  naming the type is a visible, deliberate fault-injection decision
  (the threaded/sharded dispatchers die silently on purpose).
* **RL702** — ``os.fsync``/``os.fdatasync``, or ``.flush()`` on a
  handle the def-use chain traces to ``open()``, outside
  ``broker/durability.py``. Sync policy (``always``/``interval``/
  ``on_close``) is a single dial; a stray fsync elsewhere makes
  measured durability cost a lie and an unpoliced flush widens the
  crash window the WAL's frame accounting assumes closed.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow import (
    ReachingDefs,
    build_cfg,
    own_calls,
)
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, Module

__all__ = ["check", "JOURNALED_ATTRS"]

#: Broker attributes whose mutations the journal must cover. These are
#: exactly the fields ``DurableState`` reconstructs on recovery.
JOURNALED_ATTRS = frozenset(
    {"_subscribers", "_replay", "_sequence", "_next_id", "dead_letters"}
)

#: Method calls that mutate a journaled collection in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "remove",
        "clear",
        "update",
        "setdefault",
    }
)

#: Where the journaled-state discipline applies. Matched by path
#: segment (not a root-relative prefix) so fixture trees lint
#: identically whichever root the run was anchored at.
BROKER_SCOPE = "repro/broker/"

#: The one module allowed to sync and to mutate without journaling —
#: it *is* the journal.
DURABILITY_MODULE = "repro/broker/durability.py"

#: Feature guards collapsed as enabled when judging RL700: the rule
#: evaluates the durable configuration, and ``log=False`` is the
#: journal-restore path (the record already exists).
DURABILITY_GUARDS = ("durability", "log")

#: Handle-producing factories for the RL702 flush check.
FILE_FACTORIES = frozenset({"open", "fdopen", "TemporaryFile", "NamedTemporaryFile"})


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _self_attr(expr: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _journaled_mutations(stmt: ast.stmt) -> list[tuple[str, int]]:
    """(attr, line) pairs for journaled-state mutations in ``stmt``."""
    hits: list[tuple[str, int]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            attr = _self_attr(target)
            if attr in JOURNALED_ATTRS:
                hits.append((attr, stmt.lineno))
            elif isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr in JOURNALED_ATTRS:
                    hits.append((attr, stmt.lineno))
    elif isinstance(stmt, ast.AugAssign):
        attr = _self_attr(stmt.target)
        if attr in JOURNALED_ATTRS:
            hits.append((attr, stmt.lineno))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr in JOURNALED_ATTRS:
                    hits.append((attr, stmt.lineno))
    for call in own_calls(stmt):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            attr = _self_attr(func.value)
            if attr in JOURNALED_ATTRS:
                hits.append((attr, call.lineno))
    return hits


def _is_journal_call(call: ast.Call) -> bool:
    name = _terminal(call.func)
    return name is not None and name.startswith("log_")


def _check_journal_coverage(fn: FunctionInfo, module: Module) -> list[Finding]:
    if fn.name == "__init__" or "restore" in fn.name:
        return []
    cfg = build_cfg(
        fn.node, collapse_guards=DURABILITY_GUARDS, exception_edges=False
    )
    reachable = cfg.reachable_from_entry()
    journal_blocks: set[int] = set()
    mutations: list[tuple[int, str, int]] = []  # (block, attr, line)
    for block in cfg.blocks.values():
        if block.id not in reachable:
            continue
        for stmt in block.stmts:
            if any(_is_journal_call(c) for c in own_calls(stmt)):
                journal_blocks.add(block.id)
            for attr, line in _journaled_mutations(stmt):
                mutations.append((block.id, attr, line))
    if not mutations:
        return []
    dom = cfg.dominators()
    pdom = cfg.postdominators()
    findings: list[Finding] = []
    for block_id, attr, line in mutations:
        covered = block_id in journal_blocks or any(
            jb in dom.get(block_id, set()) or jb in pdom.get(block_id, set())
            for jb in journal_blocks
        )
        if not covered:
            findings.append(
                Finding(
                    path=module.rel,
                    line=line,
                    rule="RL700",
                    message=(
                        f"self.{attr} mutated with no dominating or "
                        "post-dominating durability log_* call: a crash "
                        "here diverges journal and state (write ahead, "
                        "then mutate)"
                    ),
                    symbol=fn.qualname,
                    chain=(f"mutates self.{attr}", "no covering log_*"),
                )
            )
    return findings


def _always_reraises(stmts: list[ast.stmt]) -> bool:
    """Does this handler body re-raise (or raise) on every path?"""
    for stmt in stmts:
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, (ast.Return, ast.Break, ast.Continue, ast.Pass)):
            return False
        if isinstance(stmt, ast.If):
            if stmt.orelse and _always_reraises(stmt.body) and _always_reraises(
                stmt.orelse
            ):
                return True
            # One branch may fall through; keep scanning the suite.
        if isinstance(stmt, ast.With):
            if _always_reraises(stmt.body):
                return True
    return False


def _catches_base_exception(handler: ast.ExceptHandler) -> str | None:
    """Label if the handler catches BaseException-or-everything."""
    if handler.type is None:
        return "except:"
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        if _terminal(t) == "BaseException":
            return "except BaseException"
    return None


def _check_swallowed_crashes(module: Module) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            label = _catches_base_exception(handler)
            if label is None:
                continue
            if _always_reraises(handler.body):
                continue
            findings.append(
                Finding(
                    path=module.rel,
                    line=handler.lineno,
                    rule="RL701",
                    message=(
                        f"{label} can complete without re-raising: it "
                        "absorbs SimulatedCrash/KeyboardInterrupt, so a "
                        "scripted broker death becomes silent "
                        "continuation (re-raise, or narrow to Exception)"
                    ),
                    symbol=module.symbol_at(handler.lineno),
                    chain=(f"{label}@{handler.lineno}", "path without raise"),
                )
            )
    return findings


def _check_fsync_policy(module: Module) -> list[Finding]:
    findings: list[Finding] = []
    # Direct sync syscalls: only the durability module may issue them.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = _terminal(node.func)
            if name in {"fsync", "fdatasync"}:
                findings.append(
                    Finding(
                        path=module.rel,
                        line=node.lineno,
                        rule="RL702",
                        message=(
                            f"os.{name}() outside the durability module: "
                            "sync policy is a single dial in "
                            "broker/durability.py (route through "
                            "BrokerDurability)"
                        ),
                        symbol=module.symbol_at(node.lineno),
                        chain=(f"os.{name}@{node.lineno}",),
                    )
                )
    # .flush() on a handle whose def-use chain reaches open().
    for fn in module.functions:
        cfg = build_cfg(fn.node)
        reaching = ReachingDefs(cfg)
        for block in cfg.blocks.values():
            for stmt in block.stmts:
                for call in own_calls(stmt):
                    func = call.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and func.attr == "flush"
                        and isinstance(func.value, ast.Name)
                    ):
                        continue
                    defs = reaching.reaching(block.id, stmt, func.value.id)
                    opened = [
                        d
                        for d in defs
                        if d.value is not None
                        and isinstance(d.value, ast.Call)
                        and _terminal(d.value.func) in FILE_FACTORIES
                    ]
                    if opened:
                        findings.append(
                            Finding(
                                path=module.rel,
                                line=call.lineno,
                                rule="RL702",
                                message=(
                                    f"{func.value.id}.flush() on an open() "
                                    "handle outside the durability module: "
                                    "unpoliced flushes widen the crash "
                                    "window the WAL accounts for"
                                ),
                                symbol=fn.qualname,
                                chain=(
                                    f"open@{opened[0].stmt.lineno}",
                                    f"flush@{call.lineno}",
                                ),
                            )
                        )
    return findings


def check(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        is_durability = module.rel.endswith(DURABILITY_MODULE)
        findings.extend(_check_swallowed_crashes(module))
        if not is_durability:
            findings.extend(_check_fsync_policy(module))
        if BROKER_SCOPE in module.rel and not is_durability:
            for fn in module.functions:
                findings.extend(_check_journal_coverage(fn, module))
    return findings
