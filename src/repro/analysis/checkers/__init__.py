"""Checker modules for repro-lint. Each exposes ``check(...) -> list[Finding]``."""

from repro.analysis.checkers import (
    api_surface,
    clock_discipline,
    crash_consistency,
    determinism,
    lock_order,
    lock_scope,
    metrics_manifest,
    resource_lifecycle,
)

__all__ = [
    "api_surface",
    "clock_discipline",
    "crash_consistency",
    "determinism",
    "lock_order",
    "lock_scope",
    "metrics_manifest",
    "resource_lifecycle",
]
