"""Runtime lock-discipline instrumentation (the dynamic half of RL200).

The static lock-order checker works on a heuristic call graph; this
module is its sanitizer-style complement. :class:`InstrumentedLock`
wraps a real :class:`threading.Lock`/``RLock`` and reports every
acquisition to a :class:`LockOrderRecorder`, which

* raises :class:`LockOrderViolation` *immediately* when a thread
  re-acquires a non-reentrant lock it already holds — the PR-4
  lock-across-callback deadlock surfaces as a test failure with a
  stack trace instead of a hung CI job;
* records the observed acquire-while-holding edges, so a test (or the
  conftest fixture) can assert the *dynamic* acquisition graph is
  acyclic via :meth:`LockOrderRecorder.assert_acyclic`.

:func:`instrument_repro_locks` patches lock construction inside already
imported ``repro.*`` modules for the duration of a ``with`` block, so
every lock created by broker/engine objects built inside the block is
instrumented — no production code changes, enabled under tests by the
``lock_discipline`` fixture (or ``REPRO_LOCK_CHECK=1`` for the whole
suite).
"""

from __future__ import annotations

import sys
import threading
from types import TracebackType
from typing import Any

__all__ = [
    "InstrumentedLock",
    "LockOrderRecorder",
    "LockOrderViolation",
    "instrument_repro_locks",
]

# Real constructors, captured before any patching can occur.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderViolation(RuntimeError):
    """A thread acquired locks in a way that can deadlock."""


class LockOrderRecorder:
    """Per-thread held-lock stacks plus the global observed edge set."""

    def __init__(self) -> None:
        self._meta = _REAL_LOCK()  # guards _edges only
        self._edges: dict[tuple[str, str], str] = {}
        self._local = threading.local()

    def _held(self) -> list["InstrumentedLock"]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    def notify_acquire(self, lock: "InstrumentedLock", site: str) -> None:
        held = self._held()
        for h in held:
            if h is lock and not lock.reentrant:
                raise LockOrderViolation(
                    f"thread {threading.current_thread().name!r} re-acquired "
                    f"non-reentrant lock {lock.name!r} it already holds "
                    f"(at {site}); outside instrumentation this deadlocks"
                )
        for h in held:
            if h is lock:
                continue  # re-entrant re-acquire: no new edge
            edge = (h.name, lock.name)
            with self._meta:
                self._edges.setdefault(edge, site)
        held.append(lock)

    def notify_release(self, lock: "InstrumentedLock") -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def edges(self) -> dict[tuple[str, str], str]:
        with self._meta:
            return dict(self._edges)

    def find_cycle(self) -> list[str] | None:
        """One observed lock-order cycle as a node list, or None."""
        edges = self.edges()
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            if a != b:
                graph.setdefault(a, set()).add(b)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        parent: dict[str, str] = {}

        def dfs(v: str) -> list[str] | None:
            color[v] = GRAY
            for w in graph.get(v, ()):
                state = color.get(w, WHITE)
                if state == GRAY:
                    cycle = [w, v]
                    cur = v
                    while cur != w:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    parent[w] = v
                    found = dfs(w)
                    if found:
                        return found
            color[v] = BLACK
            return None

        for v in list(graph):
            if color.get(v, WHITE) == WHITE:
                found = dfs(v)
                if found:
                    return found
        return None

    def assert_acyclic(self) -> None:
        cycle = self.find_cycle()
        if cycle is not None:
            edges = self.edges()
            sites = "; ".join(
                f"{a}->{b} at {edges[(a, b)]}"
                for a, b in zip(cycle, cycle[1:], strict=False)
                if (a, b) in edges
            )
            raise LockOrderViolation(
                "observed lock acquisition order contains a cycle: "
                + " -> ".join(cycle)
                + (f" ({sites})" if sites else "")
            )


def _call_site(depth: int = 2) -> str:
    """Nearest caller frame *outside* this module (skips __enter__ etc.)."""
    frame = sys._getframe(depth)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only with a torn-down stack
        return "<unknown>"
    return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"


class InstrumentedLock:
    """Drop-in ``threading.Lock``/``RLock`` that reports to a recorder."""

    def __init__(
        self,
        recorder: LockOrderRecorder,
        name: str | None = None,
        *,
        reentrant: bool = False,
    ) -> None:
        self.recorder = recorder
        self.reentrant = reentrant
        self.name = name if name is not None else f"lock@{_call_site()}"
        self._inner: Any = _REAL_RLOCK() if reentrant else _REAL_LOCK()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        site = _call_site()
        self.recorder.notify_acquire(self, site)
        ok: bool = self._inner.acquire(blocking, timeout)
        if not ok:
            self.recorder.notify_release(self)
        return ok

    def release(self) -> None:
        self._inner.release()
        self.recorder.notify_release(self)

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return bool(locked())
        # RLock before 3.12 has no locked(); approximate via acquire(False).
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name!r} reentrant={self.reentrant}>"


class _ThreadingProxy:
    """Stands in for the ``threading`` module inside patched repro modules."""

    def __init__(self, recorder: LockOrderRecorder) -> None:
        self._recorder = recorder

    def Lock(self) -> InstrumentedLock:  # noqa: N802 - mimics threading API
        return InstrumentedLock(self._recorder, f"lock@{_call_site()}")

    def RLock(self) -> InstrumentedLock:  # noqa: N802 - mimics threading API
        return InstrumentedLock(
            self._recorder, f"rlock@{_call_site()}", reentrant=True
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(threading, name)


class instrument_repro_locks:
    """Context manager: new locks in ``repro.*`` modules get instrumented.

    Patches each already-imported ``repro.*`` module's ``threading``
    global (and any directly imported ``Lock``/``RLock`` names) so that
    locks *constructed* while the context is active report to
    ``recorder``. Objects created before entry keep their real locks;
    stdlib internals (``queue.Queue`` conditions, logging) are never
    touched, so intentional stdlib double-acquire patterns cannot
    false-positive.
    """

    def __init__(
        self, recorder: LockOrderRecorder, prefix: str = "repro"
    ) -> None:
        self.recorder = recorder
        self.prefix = prefix
        self._patched: list[tuple[Any, str, Any]] = []

    def __enter__(self) -> LockOrderRecorder:
        proxy = _ThreadingProxy(self.recorder)
        for name, mod in list(sys.modules.items()):
            if mod is None:
                continue
            if name != self.prefix and not name.startswith(self.prefix + "."):
                continue
            if name.startswith("repro.analysis"):
                continue  # never instrument the instrumentation
            ns = getattr(mod, "__dict__", None)
            if ns is None:
                continue
            if ns.get("threading") is threading:
                self._patched.append((mod, "threading", threading))
                setattr(mod, "threading", proxy)
            if ns.get("Lock") is _REAL_LOCK:
                self._patched.append((mod, "Lock", _REAL_LOCK))
                setattr(mod, "Lock", proxy.Lock)
            if ns.get("RLock") is _REAL_RLOCK:
                self._patched.append((mod, "RLock", _REAL_RLOCK))
                setattr(mod, "RLock", proxy.RLock)
        return self.recorder

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        for mod, attr, original in reversed(self._patched):
            setattr(mod, attr, original)
        self._patched.clear()
