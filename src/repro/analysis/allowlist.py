"""The ``.repro-lint.toml`` allowlist: narrow, reviewed suppressions.

Every entry must name the rule(s), the exact file, the enclosing
symbol, and a human reason — a suppression is a reviewed decision, not
an escape hatch. Entries that stop matching anything become RL000
findings themselves (stale-suppression check), so the allowlist can
only shrink as code is fixed, never silently rot.

Format::

    [[allow]]
    rules = ["RL101"]
    path = "src/repro/broker/sharded.py"
    symbol = "ShardedBroker.subscribe"
    reason = "registration is serialized under the registry RLock; ..."
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "AllowEntry",
    "AllowlistError",
    "apply_allowlist",
    "check_growth",
    "load_allowlist",
]


class AllowlistError(ValueError):
    """Malformed allowlist file (missing keys, empty reason, bad TOML)."""


@dataclass(frozen=True)
class AllowEntry:
    rules: tuple[str, ...]
    path: str
    symbol: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule in self.rules
            and finding.path == self.path
            and (self.symbol == "" or finding.symbol == self.symbol)
        )

    def describe(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}{sym} {'/'.join(self.rules)}"


def load_allowlist(path: Path) -> list[AllowEntry]:
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AllowlistError(f"cannot read allowlist {path}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise AllowlistError(f"invalid TOML in {path}: {exc}") from exc
    entries: list[AllowEntry] = []
    raw_entries = data.get("allow", [])
    if not isinstance(raw_entries, list):
        raise AllowlistError(f"{path}: [[allow]] must be an array of tables")
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise AllowlistError(f"{path}: allow[{i}] is not a table")
        rules = raw.get("rules", raw.get("rule"))
        if isinstance(rules, str):
            rules = [rules]
        if not (
            isinstance(rules, list)
            and rules
            and all(isinstance(r, str) for r in rules)
        ):
            raise AllowlistError(f"{path}: allow[{i}] needs 'rules' (list of ids)")
        file_path = raw.get("path")
        if not isinstance(file_path, str) or not file_path:
            raise AllowlistError(f"{path}: allow[{i}] needs 'path'")
        symbol = raw.get("symbol", "")
        if not isinstance(symbol, str):
            raise AllowlistError(f"{path}: allow[{i}] 'symbol' must be a string")
        reason = raw.get("reason")
        if not isinstance(reason, str) or not reason.strip():
            raise AllowlistError(
                f"{path}: allow[{i}] needs a non-empty 'reason' — a "
                "suppression without a rationale is not reviewable"
            )
        entries.append(
            AllowEntry(
                rules=tuple(rules),
                path=file_path,
                symbol=symbol,
                reason=reason,
            )
        )
    return entries


def check_growth(
    base_entries: list[AllowEntry], head_entries: list[AllowEntry]
) -> tuple[list[AllowEntry], list[str]]:
    """Audit entries added relative to ``base_entries``.

    The allowlist is designed to shrink (stale entries are RL000
    failures); growth is legal but each added suppression must arrive
    with its *own* reviewed ``reason``. Returns ``(added, problems)``:
    the entries new in head, and a human-readable problem per added
    entry whose reason is a verbatim copy of a base entry's reason —
    copy-pasted rationale means the new exception was never argued on
    its own merits.
    """
    base_keys = {(e.rules, e.path, e.symbol) for e in base_entries}
    base_reasons = {e.reason.strip() for e in base_entries}
    added = [
        e
        for e in head_entries
        if (e.rules, e.path, e.symbol) not in base_keys
    ]
    problems = [
        (
            f"{entry.describe()}: reason is a verbatim copy of an "
            "existing entry's — write why *this* suppression is sound"
        )
        for entry in added
        if entry.reason.strip() in base_reasons
    ]
    return added, problems


def apply_allowlist(
    findings: list[Finding], entries: list[AllowEntry]
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Split findings into (kept, suppressed) and emit RL000 for stale entries."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[int] = set()
    for finding in findings:
        hit = next(
            (i for i, e in enumerate(entries) if e.matches(finding)), None
        )
        if hit is None:
            kept.append(finding)
        else:
            used.add(hit)
            suppressed.append(finding)
    stale = [
        Finding(
            path=".repro-lint.toml",
            line=1,
            rule="RL000",
            message=(
                f"allowlist entry {entry.describe()} matches no current "
                "finding; delete it (the code it excused is gone)"
            ),
        )
        for i, entry in enumerate(entries)
        if i not in used
    ]
    return kept, suppressed, stale
