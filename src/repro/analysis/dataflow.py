"""Per-function control-flow graphs with def-use for repro-lint.

The PR-5 checkers are syntactic: they look at what a ``with`` body or a
call chain *contains*. The determinism (RL6xx), crash-consistency
(RL7xx) and resource-lifecycle (RL8xx) families need to reason about
*paths* — "is this mutation always followed by a journal write?", "does
some path leak this handle?" — so this module builds a small, honest
CFG per function and layers classic dataflow on top:

* :func:`build_cfg` — basic blocks and edges for the full statement
  grammar the repo uses (``if``/``while``/``for``/``try``/``with``,
  ``break``/``continue``/``return``/``raise``), including:

  - **may-raise edges**: any statement that contains a call, subscript,
    or attribute access gets an edge to the innermost enclosing handler
    chain (or the function exit) — exceptions are control flow, and the
    leak the RL801 checker exists for lives on exactly those edges;
  - **finally routing**: ``return``/``break``/``raise`` inside a
    ``try``/``finally`` traverse the ``finally`` body before leaving,
    so a close in a ``finally`` covers every exit the way it does at
    runtime;
  - **guard collapse** (opt-in): ``if`` tests that mention a configured
    name (``durability`` for RL700) are resolved as if the feature were
    enabled, so a write-ahead journal call under ``if self.durability
    is not None:`` dominates the mutation it protects.

* :class:`ReachingDefs` — forward may-analysis mapping every variable
  use to the assignments that can reach it (worklist over the CFG).

* :meth:`CFG.dominators` / :meth:`CFG.postdominators` — the standard
  iterative lattice, used by RL700's "journal call covers the
  mutation" query.

* :meth:`CFG.path_avoiding` — "can execution reach ``target`` from
  ``start`` without passing through ``avoid``?", the shape of every
  leak question RL8xx asks.

Soundness stance: the CFG is intentionally over-approximate in the
same spirit as the PR-5 call graph — extra edges (every call may
raise) cost a reviewable finding; missing edges cost a latent bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CFG",
    "Block",
    "Definition",
    "ReachingDefs",
    "build_cfg",
    "assigned_names",
    "own_calls",
    "stmt_may_raise",
    "stmt_own_exprs",
]


@dataclass
class Block:
    """A basic block: straight-line statements plus its edges.

    ``raises_to`` records which successors are exception edges (a
    subset of ``succs``) so path queries can distinguish the normal
    return from an unwinding exit when a rule cares.
    """

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)
    raises_to: set[int] = field(default_factory=set)

    @property
    def first_line(self) -> int:
        return self.stmts[0].lineno if self.stmts else 0


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        self.entry = self._new_block().id
        self.exit = self._new_block().id
        #: statement id() -> block id, for checkers locating a statement.
        self.block_of_stmt: dict[int, int] = {}

    # -- construction ------------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(id=self._next_id)
        self.blocks[block.id] = block
        self._next_id += 1
        return block

    def _edge(self, src: int, dst: int, *, exceptional: bool = False) -> None:
        self.blocks[src].succs.add(dst)
        self.blocks[dst].preds.add(src)
        if exceptional:
            self.blocks[src].raises_to.add(dst)

    # -- queries -----------------------------------------------------------

    def reachable_from_entry(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def dominators(self) -> dict[int, set[int]]:
        """block id -> the set of blocks dominating it (itself included)."""
        return self._dominance(self.entry, forward=True)

    def postdominators(self) -> dict[int, set[int]]:
        """block id -> the set of blocks post-dominating it."""
        return self._dominance(self.exit, forward=False)

    def _dominance(self, root: int, *, forward: bool) -> dict[int, set[int]]:
        ids = sorted(self.blocks)
        full = set(ids)
        dom: dict[int, set[int]] = {b: set(full) for b in ids}
        dom[root] = {root}
        changed = True
        while changed:
            changed = False
            for b in ids:
                if b == root:
                    continue
                edges = self.blocks[b].preds if forward else self.blocks[b].succs
                incoming = [dom[p] for p in edges]
                new = set.intersection(*incoming) if incoming else set(full)
                new.add(b)
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        return dom

    def path_avoiding(
        self, start: int, target: int, avoid: set[int]
    ) -> bool:
        """True if ``target`` is reachable from ``start`` without entering
        any block in ``avoid`` (``start`` itself is not tested)."""
        if start == target:
            return True
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ in avoid or succ in seen:
                    continue
                if succ == target:
                    return True
                seen.add(succ)
                stack.append(succ)
        return False

    def succs_after(self, block_id: int, stmt: ast.stmt) -> set[int]:
        """Successor blocks of ``block_id`` live *after* ``stmt`` ran.

        Block-level raise edges over-approximate at the statement
        level: a block whose only may-raise statement *is* the resource
        creation would otherwise report a leak path for the exception
        that prevented the resource from existing. Statements within a
        block all share the same innermost handler (try boundaries
        start new blocks), so the raise edges apply iff some statement
        strictly after ``stmt`` may itself raise.
        """
        block = self.blocks[block_id]
        later = False
        seen_stmt = False
        for candidate in block.stmts:
            if seen_stmt and stmt_may_raise(candidate):
                later = True
                break
            if candidate is stmt:
                seen_stmt = True
        if later:
            return set(block.succs)
        return set(block.succs) - block.raises_to


def stmt_own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement evaluates *itself*, bodies excluded.

    Compound statements appear in blocks as head markers (an ``if``
    lives in the block that evaluates its test; its branches live in
    successor blocks), so checkers scanning a block must not descend
    into compound bodies — those statements are recorded in their own
    blocks.
    """
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: list[ast.expr] = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, ast.Try):
        return []
    return [
        node
        for node in ast.iter_child_nodes(stmt)
        if isinstance(node, ast.expr)
    ]


def own_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Calls in a statement's own expressions (nested defs excluded)."""
    out: list[ast.Call] = []
    stack: list[ast.AST] = list(stmt_own_exprs(stmt))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def stmt_may_raise(stmt: ast.stmt) -> bool:
    """Conservatively: does executing ``stmt`` potentially raise?

    Any contained call, subscript, attribute access, or explicit
    ``raise``/``assert`` counts. Nested function *definitions* do not —
    defining a closure cannot raise on behalf of its body.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _guard_polarity(test: ast.expr, names: tuple[str, ...]) -> bool | None:
    """Resolve a feature-guard test as if the feature were enabled.

    Returns ``True`` (take the body), ``False`` (take the else), or
    ``None`` (not a recognized guard — keep both edges). Recognized
    shapes, where ``<g>`` is a Name/Attribute whose terminal identifier
    contains one of ``names``:

    * ``<g>`` / ``<g> is not None``            -> True
    * ``not <g>`` / ``<g> is None``            -> False
    * ``<g> is not None and <rest>`` — the guard conjunct is dropped
      and the rest re-resolved (``None`` when the rest is a real
      condition, which keeps both edges — correct: the guard being on
      does not decide the other conjunct).
    """
    def is_guard_name(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            terminal = expr.id
        elif isinstance(expr, ast.Attribute):
            terminal = expr.attr
        else:
            return False
        lowered = terminal.lower()
        return any(n in lowered for n in names)

    if is_guard_name(test):
        return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _guard_polarity(test.operand, names)
        return None if inner is None else not inner
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and is_guard_name(test.left)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return isinstance(test.ops[0], ast.IsNot)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        rest = [
            v
            for v in test.values
            if _guard_polarity(v, names) is not True
        ]
        if not rest:
            return True
        if len(rest) < len(test.values):
            # Guard conjunct(s) removed; the remainder decides.
            if len(rest) == 1:
                return _guard_polarity(rest[0], names)
            return None
    return None


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(
        self,
        cfg: CFG,
        collapse_guards: tuple[str, ...],
        exception_edges: bool,
    ) -> None:
        self.cfg = cfg
        self.collapse_guards = collapse_guards
        self.exception_edges = exception_edges
        # Innermost-first stack of exception targets: block ids that a
        # raising statement unwinds to (handler head or finally head).
        self.handler_stack: list[int] = []
        # Innermost-first stack of pending finally bodies, replayed by
        # abrupt exits (return/break/continue/raise) on their way out.
        self.finally_stack: list[list[ast.stmt]] = []
        self.loop_stack: list[tuple[int, int]] = []  # (head, after)

    # Every method takes the current block id and returns the block id
    # control falls out of, or None when the path terminated.

    def build(self, stmts: list[ast.stmt], current: int | None) -> int | None:
        for stmt in stmts:
            if current is None:
                # Unreachable code after a terminator: still record the
                # statements so symbol lookup works, in a dead block.
                current = self.cfg._new_block().id
            current = self.statement(stmt, current)
        return current

    def _raise_target(self) -> int:
        return self.handler_stack[-1] if self.handler_stack else self.cfg.exit

    def _append(self, stmt: ast.stmt, current: int) -> None:
        self.cfg.blocks[current].stmts.append(stmt)
        self.cfg.block_of_stmt[id(stmt)] = current
        if self.exception_edges and stmt_may_raise(stmt):
            self.cfg._edge(current, self._raise_target(), exceptional=True)

    def _run_finallies(self, depth: int, current: int) -> int | None:
        """Route an abrupt exit through pending finally bodies.

        ``depth`` is how many innermost finally bodies to replay (all of
        them for return/raise, down to the loop for break/continue).
        """
        for body in reversed(self.finally_stack[len(self.finally_stack) - depth :]):
            current = self.build(body, current)
            if current is None:
                return None
        return current

    def statement(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._append(stmt, current)
            return self.build(stmt.body, current)
        if isinstance(stmt, ast.Return):
            self._append(stmt, current)
            out = self._run_finallies(len(self.finally_stack), current)
            if out is not None:
                cfg._edge(out, cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            self._append(stmt, current)
            cfg._edge(current, self._raise_target(), exceptional=True)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._append(stmt, current)
            if self.loop_stack:
                head, after = self.loop_stack[-1]
                target = after if isinstance(stmt, ast.Break) else head
                cfg._edge(current, target)
            return None
        self._append(stmt, current)
        return current

    def _if(self, stmt: ast.If, current: int) -> int | None:
        cfg = self.cfg
        self._append(stmt, current)
        polarity = (
            _guard_polarity(stmt.test, self.collapse_guards)
            if self.collapse_guards
            else None
        )
        join = cfg._new_block().id
        outs: list[int | None] = []
        if polarity in (True, None):
            body_head = cfg._new_block().id
            cfg._edge(current, body_head)
            outs.append(self.build(stmt.body, body_head))
        if polarity in (False, None):
            if stmt.orelse:
                else_head = cfg._new_block().id
                cfg._edge(current, else_head)
                outs.append(self.build(stmt.orelse, else_head))
            else:
                outs.append(current)
        alive = False
        for out in outs:
            if out is not None:
                cfg._edge(out, join)
                alive = True
        return join if alive else None

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int | None:
        cfg = self.cfg
        head = cfg._new_block().id
        cfg._edge(current, head)
        # The loop header owns the test/iterator statement itself.
        self._append(stmt, head)
        after = cfg._new_block().id
        body_head = cfg._new_block().id
        cfg._edge(head, body_head)
        cfg._edge(head, after)  # zero iterations / loop exit
        self.loop_stack.append((head, after))
        body_out = self.build(stmt.body, body_head)
        self.loop_stack.pop()
        if body_out is not None:
            cfg._edge(body_out, head)
        if stmt.orelse:
            else_out = self.build(stmt.orelse, after)
            if else_out is None:
                return None
            return else_out
        return after

    def _try(self, stmt: ast.Try, current: int) -> int | None:
        cfg = self.cfg
        outs: list[int | None] = []
        final_head: int | None = None
        if stmt.finalbody:
            final_head = cfg._new_block().id
            # Exceptional entry to finally: after replaying the body the
            # exception continues unwinding to the *outer* target.
            self.finally_stack.append(stmt.finalbody)

        # Handlers (or the finally, if no handlers) catch body raises.
        if stmt.handlers:
            handler_heads = [cfg._new_block().id for _ in stmt.handlers]
            catch_target = handler_heads[0]
        else:
            handler_heads = []
            assert final_head is not None
            catch_target = final_head

        body_head = cfg._new_block().id
        cfg._edge(current, body_head)
        self.handler_stack.append(catch_target)
        body_out = self.build(stmt.body, body_head)
        self.handler_stack.pop()
        if stmt.orelse and body_out is not None:
            body_out = self.build(stmt.orelse, body_out)
        outs.append(body_out)

        # Each handler body may itself raise: to the finally when
        # present, else outward.
        for head, handler in zip(handler_heads, stmt.handlers, strict=True):
            # All handler heads are alternatives of the same catch
            # point: chain them so a non-matching type falls through.
            target = self._raise_target() if final_head is None else final_head
            self.handler_stack.append(target)
            outs.append(self.build(handler.body, head))
            self.handler_stack.pop()
        for first, second in zip(handler_heads, handler_heads[1:], strict=False):
            cfg._edge(first, second)
        if handler_heads:
            # An exception matching no handler clause keeps unwinding:
            # through the finally when present, else outward.
            unmatched = final_head if final_head is not None else self._raise_target()
            cfg._edge(handler_heads[-1], unmatched, exceptional=True)

        if stmt.finalbody:
            self.finally_stack.pop()
            # Normal-path finally replay.
            join_in = cfg._new_block().id
            for out in outs:
                if out is not None:
                    cfg._edge(out, join_in)
            normal_out = self.build(stmt.finalbody, join_in)
            # Exceptional replay: the same statements re-walked into the
            # dedicated final_head block, then continuing to unwind.
            exc_out = self.build(list(stmt.finalbody), final_head)
            if exc_out is not None:
                cfg._edge(exc_out, self._raise_target(), exceptional=True)
            return normal_out
        alive = [out for out in outs if out is not None]
        if not alive:
            return None
        join = cfg._new_block().id
        for out in alive:
            cfg._edge(out, join)
        return join


def build_cfg(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    collapse_guards: tuple[str, ...] = (),
    exception_edges: bool = True,
) -> CFG:
    """Build the CFG of one function body.

    ``collapse_guards``: terminal-identifier fragments whose ``if``
    tests are resolved as feature-enabled (see module docstring).
    ``exception_edges=False`` drops the may-raise edges: dominance
    queries about the *normal* path (RL700's journal coverage) would
    otherwise be dissolved by the fact that any call can unwind.
    """
    cfg = CFG()
    builder = _Builder(cfg, collapse_guards, exception_edges)
    out = builder.build(fn.body, cfg.entry)
    if out is not None:
        cfg._edge(out, cfg.exit)
    return cfg


# -- def-use ---------------------------------------------------------------


@dataclass(frozen=True)
class Definition:
    """One assignment of ``name``: the defining statement and its value.

    ``value`` is the assigned expression when the definition has one
    (``x = expr``, ``for x in expr`` records ``expr``), else ``None``
    (``with ... as x``, ``except ... as x``, augmented assignment).
    """

    name: str
    stmt: ast.stmt
    value: ast.expr | None


def assigned_names(stmt: ast.stmt) -> list[Definition]:
    """The variable definitions a statement introduces."""
    defs: list[Definition] = []

    def targets(target: ast.expr, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            defs.append(Definition(name=target.id, stmt=stmt, value=value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Tuple unpacking: the per-name value is unknown.
                targets(element, None)
        elif isinstance(target, ast.Starred):
            targets(target.value, None)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets(target, stmt.value)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        targets(stmt.target, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target, stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars, item.context_expr)
    return defs


class ReachingDefs:
    """Forward may-analysis: which definitions reach each block entry."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        gen: dict[int, dict[str, set[int]]] = {}
        self._defs: dict[int, Definition] = {}
        for block in cfg.blocks.values():
            block_gen: dict[str, set[int]] = {}
            for stmt in block.stmts:
                for definition in assigned_names(stmt):
                    self._defs[id(definition)] = definition
                    # A later def in the same block kills the earlier.
                    block_gen[definition.name] = {id(definition)}
            gen[block.id] = block_gen
        # in[b] = union over preds of out[p]; out[b] = gen[b] over in[b].
        self.entry_defs: dict[int, dict[str, set[int]]] = {
            b: {} for b in cfg.blocks
        }
        out: dict[int, dict[str, set[int]]] = {b: dict(gen[b]) for b in cfg.blocks}
        changed = True
        while changed:
            changed = False
            for b in sorted(cfg.blocks):
                merged: dict[str, set[int]] = {}
                for pred in cfg.blocks[b].preds:
                    for name, ids in out[pred].items():
                        merged.setdefault(name, set()).update(ids)
                if merged != self.entry_defs[b]:
                    self.entry_defs[b] = merged
                    changed = True
                new_out = {k: set(v) for k, v in merged.items()}
                new_out.update({k: set(v) for k, v in gen[b].items()})
                if new_out != out[b]:
                    out[b] = new_out
                    changed = True

    def reaching(self, block_id: int, stmt: ast.stmt, name: str) -> list[Definition]:
        """Definitions of ``name`` that may reach ``stmt`` in its block."""
        live = {
            def_id: self._defs[def_id]
            for def_id in self.entry_defs.get(block_id, {}).get(name, set())
        }
        for candidate in self.cfg.blocks[block_id].stmts:
            if candidate is stmt:
                break
            for definition in assigned_names(candidate):
                if definition.name == name:
                    live = {id(definition): definition}
        return list(live.values())
