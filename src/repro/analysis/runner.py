"""Orchestration for ``repro lint``: load, check, allowlist, report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.allowlist import AllowEntry, apply_allowlist, load_allowlist
from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers import (
    api_surface,
    clock_discipline,
    crash_consistency,
    determinism,
    lock_order,
    lock_scope,
    metrics_manifest,
    resource_lifecycle,
)
from repro.analysis.findings import RULES, Finding
from repro.analysis.project import load_modules

__all__ = ["LintResult", "run_lint", "DEFAULT_ALLOWLIST"]

DEFAULT_ALLOWLIST = ".repro-lint.toml"


@dataclass
class LintResult:
    """Outcome of one lint run (``findings`` already excludes suppressions)."""

    findings: list[Finding]
    stale: list[Finding]
    suppressed: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale

    def all_reportable(self) -> list[Finding]:
        return sorted(self.findings + self.stale, key=Finding.sort_key)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "checked_files": self.checked_files,
                "suppressed": len(self.suppressed),
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "rule": f.rule,
                        "symbol": f.symbol,
                        "message": f.message,
                        "chain": list(f.chain),
                    }
                    for f in self.all_reportable()
                ],
            },
            indent=2,
        )

    def render_text(self) -> str:
        lines = [f.render() for f in self.all_reportable()]
        summary = (
            f"repro lint: {len(self.findings)} finding(s), "
            f"{len(self.stale)} stale suppression(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.checked_files} file(s) checked"
        )
        return "\n".join([*lines, summary])


def _load_manifest() -> tuple[dict[str, str], dict[str, str]]:
    """Exact + wildcard (prefix -> kind) maps from :mod:`repro.obs.manifest`."""
    from repro.obs.manifest import METRICS

    exact: dict[str, str] = {}
    wildcards: dict[str, str] = {}
    for spec in METRICS:
        if spec.name.endswith(".*"):
            wildcards[spec.name[:-1]] = spec.kind
        else:
            exact[spec.name] = spec.kind
    return exact, wildcards


def render_rules() -> str:
    width = max(len(r.id) for r in RULES)
    return "\n".join(
        f"{r.id:<{width}}  [{r.category}] {r.summary}" for r in RULES
    )


def run_lint(
    root: Path,
    paths: list[Path] | None = None,
    *,
    allowlist: Path | None = None,
    allow_entries: list[AllowEntry] | None = None,
    changed_scope: bool = False,
) -> LintResult:
    """Run every checker over ``paths`` (default: ``<root>/src``).

    ``allowlist`` defaults to ``<root>/.repro-lint.toml`` when present;
    pass ``allow_entries`` directly to bypass file loading (tests).
    ``changed_scope=True`` marks a partial-tree run (``repro lint
    --changed``): whole-tree drift checks (API surface) are skipped —
    they compare the reviewed snapshot against *every* module, so a
    slice always looks like drift — and allowlist entries for unscanned
    files are not reported as stale. CI's whole-tree walk stays
    authoritative for both.
    """
    root = root.resolve()
    if paths is None:
        paths = [root / "src"]
    modules = load_modules(root, paths)
    graph = CallGraph(modules)
    exact, wildcards = _load_manifest()

    findings: list[Finding] = []
    findings += lock_scope.check(modules, graph)
    findings += lock_order.check(modules, graph)
    findings += clock_discipline.check(modules)
    findings += metrics_manifest.check(modules, exact, wildcards)
    if not changed_scope:
        findings += api_surface.check(modules, root)
    findings += determinism.check(modules)
    findings += crash_consistency.check(modules)
    findings += resource_lifecycle.check(modules)

    if allow_entries is None:
        if allowlist is None:
            candidate = root / DEFAULT_ALLOWLIST
            allowlist = candidate if candidate.is_file() else None
        allow_entries = load_allowlist(allowlist) if allowlist else []
    kept, suppressed, stale = apply_allowlist(findings, allow_entries)
    kept.sort(key=Finding.sort_key)
    return LintResult(
        findings=kept,
        stale=[] if changed_scope else stale,
        suppressed=suppressed,
        checked_files=len(modules),
    )
