"""Source-tree loading for repro-lint: parsed modules + symbol lookup.

Everything downstream of this module works on :class:`Module` objects —
a parsed AST plus enough precomputed structure (function table, symbol
intervals) for the checkers to stay simple and single-pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FunctionInfo", "Module", "load_modules", "iter_python_files"]


@dataclass
class FunctionInfo:
    """One function or method definition inside a module."""

    name: str
    qualname: str  # "Class.method", "outer.inner", or "name"
    cls: str | None
    module: "Module"
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def key(self) -> str:
        """Project-unique key: ``<relpath>::<qualname>``."""
        return f"{self.module.rel}::{self.qualname}"


@dataclass
class Module:
    """A parsed source file with its function/class tables."""

    path: Path
    rel: str  # repo-relative, forward slashes
    tree: ast.Module
    functions: list[FunctionInfo] = field(default_factory=list)
    #: module-level function name -> FunctionInfo
    toplevel: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost function enclosing ``line`` ('' if none)."""
        best = ""
        best_span = None
        for fn in self.functions:
            start = fn.node.lineno
            end = fn.node.end_lineno or start
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = fn.qualname, span
        return best


def _index_module(mod: Module) -> None:
    """Populate the function/class tables by walking def sites."""

    def visit(node: ast.AST, cls: str | None, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(
                    name=child.name,
                    qualname=qual,
                    cls=cls,
                    module=mod,
                    node=child,
                )
                mod.functions.append(info)
                if cls is None and prefix == "":
                    mod.toplevel[child.name] = info
                if cls is not None:
                    mod.classes.setdefault(cls, {}).setdefault(child.name, info)
                visit(child, cls, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                mod.classes.setdefault(child.name, {})
                visit(child, child.name, f"{child.name}.")
            else:
                visit(child, cls, prefix)

    visit(mod.tree, None, "")


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
    return sorted(seen)


def load_modules(root: Path, paths: list[Path]) -> list[Module]:
    """Parse every Python file under ``paths`` into :class:`Module` objects.

    Files that fail to parse are skipped silently: syntax errors are the
    compiler's job, not the linter's, and a half-written file should not
    take the whole run down.
    """
    root = root.resolve()
    modules: list[Module] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            continue
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        mod = Module(path=path, rel=rel, tree=tree)
        _index_module(mod)
        modules.append(mod)
    return modules
