"""Name-based call-graph resolution over a set of parsed modules.

Python's dynamism rules out a sound call graph, so this is a deliberate
heuristic tuned for the repo's idiom — good enough to follow
``self._attempt_loop(...)`` into the method that invokes subscriber
callbacks, which is the case the lock-scope checker exists for:

* ``name(...)``                -> module-level function ``name`` in the
  *same* module (class constructors and imports are ignored);
* ``self.name(...)``           -> method ``name`` on the enclosing class
  (same module);
* ``<expr>.name(...)``         -> *every* known def called ``name``
  across the loaded modules (over-approximate on purpose: for sink
  detection a false edge is a reviewable allowlist entry, a missing
  edge is a latent deadlock).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.project import FunctionInfo, Module

__all__ = ["CallGraph", "CallSite", "is_fuzzy_call"]

#: Receivers-with-many-defs guard: if a bare-attribute call resolves to
#: more than this many candidate defs, the name is too generic to be a
#: useful edge (e.g. ``get``) and is dropped.
MAX_CANDIDATES = 12

#: Method names shared with builtin collections/strings. A bare
#: ``obj.append(...)`` is a deque/list append for every receiver the
#: repo actually has; resolving it to some class's ``append`` method
#: fabricates edges (e.g. DeadLetterQueue.append calling itself through
#: its own deque).
GENERIC_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "popleft",
        "put",
        "read",
        "remove",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "write",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: the call expression and its targets."""

    call: ast.Call
    targets: tuple[FunctionInfo, ...]


class CallGraph:
    """Heuristic project call graph (see module docstring for rules)."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self._by_name: dict[str, list[FunctionInfo]] = {}
        for mod in modules:
            for fn in mod.functions:
                self._by_name.setdefault(fn.name, []).append(fn)

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo | None, module: Module
    ) -> tuple[FunctionInfo, ...]:
        func = call.func
        if isinstance(func, ast.Name):
            target = module.toplevel.get(func.id)
            return (target,) if target is not None else ()
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id == "self":
                if caller is not None and caller.cls is not None:
                    methods = module.classes.get(caller.cls, {})
                    target = methods.get(func.attr)
                    if target is not None:
                        return (target,)
                return ()
            if func.attr in GENERIC_METHOD_NAMES:
                return ()
            candidates = self._by_name.get(func.attr, [])
            if caller is not None:
                # ``self._inner.publish(...)`` inside ``publish`` is
                # delegation; the enclosing def is never its own target
                # through an unknown receiver.
                candidates = [c for c in candidates if c is not caller]
            if 0 < len(candidates) <= MAX_CANDIDATES:
                return tuple(candidates)
        return ()

    def calls_in(
        self, node: ast.AST, caller: FunctionInfo | None, module: Module
    ) -> list[CallSite]:
        """All resolvable call sites inside ``node`` (nested defs skipped)."""
        sites: list[CallSite] = []
        for call in _walk_calls(node):
            targets = self.resolve_call(call, caller, module)
            if targets:
                sites.append(CallSite(call=call, targets=targets))
        return sites


def is_fuzzy_call(call: ast.Call) -> bool:
    """True for bare-attribute calls (``obj.m(...)``, receiver unknown).

    ``name(...)`` and ``self.m(...)`` resolve with high confidence;
    everything else is the over-approximate by-name bucket. Checkers
    where a false edge produces a hard failure (lock-order cycles)
    should only trust fuzzy calls that resolve to a *single* def.
    """
    func = call.func
    if isinstance(func, ast.Name):
        return False
    if isinstance(func, ast.Attribute):
        recv = func.value
        return not (isinstance(recv, ast.Name) and recv.id == "self")
    return True


def _walk_calls(node: ast.AST) -> list[ast.Call]:
    """Calls inside ``node``, not descending into nested function defs.

    A nested def is a *definition*, not an execution: a closure handed to
    a worker thread runs outside the enclosing ``with`` scope, so its
    body must not contribute lock-scope sinks for the enclosing lock.
    """
    out: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out
