"""repro-lint: project-specific static analysis enforcing repo invariants.

The broker/engine concurrency machinery carries invariants that unit
tests cannot pin down exhaustively — they are properties of *all* code,
present and future, not of particular inputs. Each is mechanically
checkable, and each earned its checker by being violated (and fixed) in
a past review:

* **lock scope** (:mod:`repro.analysis.checkers.lock_scope`) — no lock
  may be held across a subscriber callback, a broker re-entry point
  (``publish``/``subscribe``/``flush``), or a sleep. Holding the
  breaker lock across callbacks deadlocked re-entrant publishes in the
  PR-4 review; this class of bug now fails ``repro lint``.
* **lock order** (:mod:`repro.analysis.checkers.lock_order`) — the
  static lock-acquisition graph must be acyclic. The runtime
  complement, :class:`~repro.analysis.runtime.InstrumentedLock`,
  records *actual* acquisition orders under test.
* **clock discipline**
  (:mod:`repro.analysis.checkers.clock_discipline`) — all timing flows
  through the injectable :class:`~repro.obs.clock.Clock`; direct
  ``time.*`` calls outside :mod:`repro.obs.clock` break deterministic
  fault injection.
* **metrics manifest**
  (:mod:`repro.analysis.checkers.metrics_manifest`) — every metric
  name registered in ``src/`` must appear in the canonical manifest
  (:mod:`repro.obs.manifest`), so no gauge or counter is undocumented
  (or silently mirrors another, the PR-4 gauge-drift class).
* **API surface** (:mod:`repro.analysis.checkers.api_surface`) — the
  ``repro.api`` facade, module ``__all__`` lists, and frozen-config
  field sets may not drift from the reviewed snapshots in
  ``tests/test_public_api.py``.

Run it with ``repro lint`` (exit status 1 on findings); deliberate,
reviewed exceptions live in ``.repro-lint.toml``, and suppressions that
no longer match anything fail the run (stale-suppression check).
"""

from repro.analysis.allowlist import AllowEntry, AllowlistError, load_allowlist
from repro.analysis.findings import RULES, Finding, Rule
from repro.analysis.runner import LintResult, run_lint
from repro.analysis.runtime import (
    InstrumentedLock,
    LockOrderRecorder,
    LockOrderViolation,
    instrument_repro_locks,
)

__all__ = [
    "AllowEntry",
    "AllowlistError",
    "Finding",
    "InstrumentedLock",
    "LintResult",
    "LockOrderRecorder",
    "LockOrderViolation",
    "RULES",
    "Rule",
    "instrument_repro_locks",
    "load_allowlist",
    "run_lint",
]
