"""Structured findings and the rule catalog for repro-lint."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Finding", "Rule", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable id, a category, and a one-line summary."""

    id: str
    category: str
    summary: str


#: The complete rule catalog. Checker modules reference these by id;
#: ``repro lint --list-rules`` prints the table.
RULES: tuple[Rule, ...] = (
    Rule(
        "RL000",
        "allowlist",
        "Allowlist entry matches no current finding (stale suppression).",
    ),
    Rule(
        "RL100",
        "lock-scope",
        "Lock held across a subscriber callback invocation.",
    ),
    Rule(
        "RL101",
        "lock-scope",
        "Lock held across a broker re-entry point "
        "(publish/subscribe/unsubscribe/flush).",
    ),
    Rule(
        "RL102",
        "lock-scope",
        "Lock held across a sleep/backoff call.",
    ),
    Rule(
        "RL200",
        "lock-order",
        "Cycle in the static lock-acquisition graph.",
    ),
    Rule(
        "RL300",
        "clock",
        "Direct time.* call bypasses the injectable Clock.",
    ),
    Rule(
        "RL301",
        "clock",
        "datetime.now()/utcnow() bypasses the injectable Clock.",
    ),
    Rule(
        "RL400",
        "metrics",
        "Metric name not declared in the canonical manifest.",
    ),
    Rule(
        "RL401",
        "metrics",
        "Metric registered under a dynamic (unverifiable) name.",
    ),
    Rule(
        "RL500",
        "api",
        "repro.api facade exports drift from the reviewed snapshot.",
    ),
    Rule(
        "RL501",
        "api",
        "__all__ names a symbol the module does not define.",
    ),
    Rule(
        "RL502",
        "api",
        "Frozen-config field set drifts from the reviewed snapshot.",
    ),
    Rule(
        "RL600",
        "determinism",
        "Unseeded random source outside a seed-pinned helper.",
    ),
    Rule(
        "RL601",
        "determinism",
        "Set iteration flows into an order-sensitive sink without sorted().",
    ),
    Rule(
        "RL602",
        "determinism",
        "Float accumulation over an unordered iterable.",
    ),
    Rule(
        "RL700",
        "crash-consistency",
        "Journaled broker state mutated without a covering journal call.",
    ),
    Rule(
        "RL701",
        "crash-consistency",
        "Handler can swallow SimulatedCrash/BaseException without re-raising.",
    ),
    Rule(
        "RL702",
        "crash-consistency",
        "fsync/flush on a file handle outside the durability boundary.",
    ),
    Rule(
        "RL800",
        "resource-lifecycle",
        "Thread/process started but never joined and not a daemon.",
    ),
    Rule(
        "RL801",
        "resource-lifecycle",
        "File/memmap handle lacks a deterministic close on some path.",
    ),
    Rule(
        "RL802",
        "resource-lifecycle",
        "Lock acquired without an exception-safe release.",
    ),
)

_RULES_BY_ID = {r.id: r for r in RULES}


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises ``KeyError`` for unknown ids)."""
    return _RULES_BY_ID[rule_id]


@dataclass(frozen=True)
class Finding:
    """One violation: where it is, which rule, and why it matters.

    ``path`` is repo-relative with forward slashes so findings are
    stable across machines (and usable as allowlist keys). ``symbol``
    is the enclosing function/method qualname (``Class.method``), empty
    at module level.
    """

    path: str
    line: int
    rule: str
    message: str
    symbol: str = ""
    chain: tuple[str, ...] = field(default=())

    def render(self) -> str:
        loc = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        via = f" (via {' -> '.join(self.chain)})" if self.chain else ""
        return f"{loc}: {self.rule}{sym} {self.message}{via}"

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def with_symbol(self, symbol: str) -> "Finding":
        return replace(self, symbol=symbol)
