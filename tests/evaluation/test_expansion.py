"""Tests for semantic expansion of seed events (Section 5.2.2)."""

import random

import pytest

from repro.core.events import Event
from repro.evaluation.expansion import (
    ExpansionConfig,
    _corrupt,
    expand_event,
    expand_events,
)

SEED = Event.create(
    payload={
        "type": "increased energy consumption event",
        "measurement unit": "kilowatt hour",
        "device": "laptop",
        "room": "room 112",
        "city": "galway",
    }
)


class TestExpandEvent:
    def run(self, config=None):
        config = config or ExpansionConfig(variants_per_seed=8, distractors_per_seed=0)
        return expand_event(SEED, pytest.thesaurus, config, random.Random(1), 0)

    @pytest.fixture(autouse=True)
    def _attach(self, thesaurus):
        pytest.thesaurus = thesaurus

    def test_first_variant_is_normalized_seed(self):
        variants = self.run()
        assert variants[0].replacements == 0
        assert variants[0].event.value("device") == "laptop"

    def test_variants_distinct(self):
        variants = self.run()
        payloads = [v.event.payload for v in variants]
        assert len(payloads) == len(set(payloads))

    def test_variants_keep_seed_index(self):
        for variant in self.run():
            assert variant.seed_index == 0

    def test_variants_expansion_equivalent_to_seed(self, tiny_workload):
        canon = tiny_workload.canonicalizer
        for variant in self.run():
            if variant.distractor:
                continue
            for av, seed_av in zip(variant.event.payload, SEED.payload, strict=True):
                if isinstance(av.value, str):
                    assert canon.equivalent(str(av.value), str(seed_av.value)), (
                        av, seed_av,
                    )

    def test_variant_count_honoured(self):
        config = ExpansionConfig(variants_per_seed=4, distractors_per_seed=0)
        assert len(self.run(config)) <= 4

    def test_attribute_collisions_avoided(self):
        variants = self.run(
            ExpansionConfig(variants_per_seed=20, distractors_per_seed=0)
        )
        for variant in variants:
            attrs = [av.attribute for av in variant.event.payload]
            assert len(attrs) == len(set(attrs))


class TestDistractors:
    def test_distractors_marked(self, thesaurus):
        config = ExpansionConfig(variants_per_seed=2, distractors_per_seed=4)
        variants = expand_event(SEED, thesaurus, config, random.Random(3), 0)
        distractors = [v for v in variants if v.distractor]
        assert distractors

    def test_corrupt_changes_exactly_one_token(self, thesaurus):
        rng = random.Random(5)
        corrupted = _corrupt(SEED, rng)
        assert corrupted is not None
        differing = [
            (a.value, b.value)
            for a, b in zip(SEED.payload, corrupted.payload, strict=True)
            if a.value != b.value
        ]
        assert len(differing) == 1

    def test_corrupt_none_when_nothing_corruptible(self, thesaurus):
        event = Event.create(payload={"device": "laptop"})
        assert _corrupt(event, random.Random(0)) is None

    def test_distractors_not_equivalent_to_seed(self, thesaurus, tiny_workload):
        canon = tiny_workload.canonicalizer
        config = ExpansionConfig(variants_per_seed=1, distractors_per_seed=6)
        variants = expand_event(SEED, thesaurus, config, random.Random(7), 0)
        for variant in variants:
            if not variant.distractor:
                continue
            equivalent = all(
                canon.equivalent(str(av.value), str(seed_av.value))
                for av, seed_av in zip(variant.event.payload, SEED.payload, strict=True)
                if isinstance(av.value, str)
            )
            assert not equivalent


class TestExpandEvents:
    def test_deterministic(self, thesaurus):
        seeds = (SEED,)
        config = ExpansionConfig(variants_per_seed=6)
        assert expand_events(seeds, thesaurus, config) == expand_events(
            seeds, thesaurus, config
        )

    def test_multiple_seeds_tracked(self, thesaurus):
        other = Event.create(payload={"type": "noise event", "city": "dublin"})
        expanded = expand_events((SEED, other), thesaurus)
        assert {e.seed_index for e in expanded} == {0, 1}

    def test_paper_scale_config(self):
        config = ExpansionConfig.paper_scale()
        assert config.variants_per_seed + config.distractors_per_seed == 89
