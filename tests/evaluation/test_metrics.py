"""Tests for the effectiveness/efficiency metrics (Section 5.1, Table 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    RECALL_LEVELS,
    ConfusionCounts,
    EffectivenessResult,
    average_interpolated_precision,
    effectiveness,
    interpolated_precision,
    max_f1_from_precisions,
    measure_throughput,
    ranking_from_scores,
)


class TestConfusionCounts:
    def test_precision_recall_f1(self):
        counts = ConfusionCounts(tp=8, fp=2, fn=2, tn=88)
        assert counts.precision() == 0.8
        assert counts.recall() == 0.8
        assert math.isclose(counts.f1(), 0.8)

    def test_degenerate_cases(self):
        empty = ConfusionCounts(0, 0, 0, 10)
        assert empty.precision() == 0.0
        assert empty.recall() == 0.0
        assert empty.f1() == 0.0

    def test_from_decisions(self):
        counts = ConfusionCounts.from_decisions(
            [True, True, False, False], [True, False, True, False]
        )
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)

    def test_from_decisions_length_mismatch(self):
        with pytest.raises(ValueError):
            ConfusionCounts.from_decisions([True], [True, False])


class TestRanking:
    def test_sorted_by_score_desc(self):
        assert ranking_from_scores([0.1, 0.9, 0.5]) == [1, 2, 0]

    def test_ties_break_by_index(self):
        assert ranking_from_scores([0.5, 0.5, 0.9]) == [2, 0, 1]

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30))
    def test_is_permutation(self, scores):
        ranking = ranking_from_scores(scores)
        assert sorted(ranking) == list(range(len(scores)))


class TestInterpolatedPrecision:
    def test_levels_count(self):
        assert len(RECALL_LEVELS) == 11
        assert RECALL_LEVELS[0] == 0.0 and RECALL_LEVELS[-1] == 1.0

    def test_perfect_ranking(self):
        precisions = interpolated_precision([0, 1, 2, 3], {0, 1})
        assert precisions == [1.0] * 11

    def test_worst_ranking(self):
        precisions = interpolated_precision([2, 3, 0, 1], {0, 1})
        # relevant at positions 3 and 4: p(r=1.0) = 2/4.
        assert precisions[-1] == 0.5

    def test_interpolation_is_max_to_the_right(self):
        # relevant at ranks 1 and 4 of 4: precision points (1.0, 1.0) and
        # (0.5 recall -> ... ). Interpolated precision is non-increasing.
        precisions = interpolated_precision([0, 9, 8, 1], {0, 1})
        assert all(a >= b for a, b in zip(precisions, precisions[1:], strict=False))

    def test_requires_relevant(self):
        with pytest.raises(ValueError):
            interpolated_precision([0, 1], set())

    @given(
        st.sets(st.integers(0, 19), min_size=1, max_size=10),
        st.randoms(use_true_random=False),
    )
    def test_monotone_non_increasing(self, relevant, rng):
        ranking = list(range(20))
        rng.shuffle(ranking)
        precisions = interpolated_precision(ranking, relevant)
        assert all(a >= b - 1e-12 for a, b in zip(precisions, precisions[1:], strict=False))
        assert all(0.0 <= p <= 1.0 for p in precisions)


class TestAveraging:
    def test_skips_empty_relevant_sets(self):
        precisions = average_interpolated_precision(
            [[0, 1], [1, 0]], [set(), {0}]
        )
        assert precisions == interpolated_precision([1, 0], {0})

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            average_interpolated_precision([[0]], [set()])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            average_interpolated_precision([[0]], [])


class TestMaxF1:
    def test_perfect(self):
        assert max_f1_from_precisions([1.0] * 11) == 1.0

    def test_zero(self):
        assert max_f1_from_precisions([0.0] * 11) == 0.0

    def test_known_value(self):
        precisions = [0.0] * 10 + [0.5]
        assert math.isclose(max_f1_from_precisions(precisions), 2 * 0.5 / 1.5)


class TestEffectiveness:
    def test_end_to_end_perfect_scores(self):
        result = effectiveness([[0.9, 0.8, 0.1]], [{0, 1}])
        assert isinstance(result, EffectivenessResult)
        assert result.max_f1 == 1.0

    def test_random_scores_bounded(self):
        result = effectiveness([[0.5, 0.4, 0.6, 0.1]], [{3}])
        assert 0.0 < result.max_f1 <= 1.0


def test_measure_throughput():
    result = measure_throughput(lambda: 100)
    assert result.events == 100
    assert result.seconds >= 0.0
    assert result.events_per_second > 0
