"""Tests for the sub-experiment harness (Section 5.2.4 / 5.3)."""

import pytest

from repro.evaluation.harness import (
    nonthematic_matcher_factory,
    run_baseline,
    run_grid,
    run_sub_experiment,
    score_matrix,
    thematic_matcher_factory,
)
from repro.evaluation.themes import ThemeCombination, ThemeGridConfig


@pytest.fixture(scope="module")
def micro_grid(tiny_workload):
    config = ThemeGridConfig(
        event_sizes=(2, 6), subscription_sizes=(2, 6), samples_per_cell=2
    )
    return run_grid(tiny_workload, grid_config=config)


class TestSubExperiment:
    def test_result_fields(self, tiny_workload):
        combo = ThemeCombination(
            event_tags=("energy",), subscription_tags=("energy", "pollution")
        )
        result = run_sub_experiment(
            tiny_workload, thematic_matcher_factory(tiny_workload), combo
        )
        assert 0.0 <= result.f1 <= 1.0
        assert result.events_per_second > 0
        assert result.combination is combo

    def test_baseline_uses_empty_themes(self, tiny_workload):
        result = run_baseline(tiny_workload)
        assert result.combination.event_tags == ()
        assert result.combination.subscription_tags == ()
        assert 0.0 < result.f1 < 1.0

    def test_score_matrix_shape(self, tiny_workload):
        matcher = nonthematic_matcher_factory(tiny_workload)()
        scores = score_matrix(
            matcher,
            tiny_workload.subscriptions.approximate[:2],
            tiny_workload.events[:5],
        )
        assert len(scores) == 2
        assert all(len(row) == 5 for row in scores)


class TestGrid:
    def test_cells_cover_config(self, micro_grid):
        assert set(micro_grid.cells) == {(2, 2), (2, 6), (6, 2), (6, 6)}
        for cell in micro_grid.cells.values():
            assert len(cell.samples) == 2

    def test_cell_statistics(self, micro_grid):
        cell = micro_grid.cell(2, 6)
        assert 0.0 <= cell.mean_f1 <= 1.0
        assert cell.f1_error >= 0.0
        assert cell.mean_throughput > 0
        assert cell.throughput_error >= 0.0

    def test_fraction_above(self, micro_grid):
        assert 0.0 <= micro_grid.fraction_above(0.0) <= 1.0
        assert micro_grid.fraction_above(2.0) == 0.0
        assert micro_grid.fraction_above(0.0, value="throughput") == 1.0

    def test_best_and_mean(self, micro_grid):
        best = micro_grid.best()
        assert best.mean_f1 == max(c.mean_f1 for c in micro_grid.cells.values())
        assert 0.0 <= micro_grid.overall_mean() <= 1.0
        assert micro_grid.overall_mean("throughput") > 0

    def test_unknown_value_kind_rejected(self, micro_grid):
        with pytest.raises(ValueError):
            micro_grid.fraction_above(0.5, value="latency")

    def test_progress_callback(self, tiny_workload):
        lines = []
        config = ThemeGridConfig(
            event_sizes=(2,), subscription_sizes=(2,), samples_per_cell=1
        )
        run_grid(tiny_workload, grid_config=config, progress=lines.append)
        assert len(lines) == 1
        assert "cell (2, 2)" in lines[0]
