"""Tests for grid-result persistence."""

import json

import pytest

from repro.evaluation.harness import run_grid
from repro.evaluation.reporting import format_error_table, format_heatmap
from repro.evaluation.results import load_grid, save_grid
from repro.evaluation.themes import ThemeGridConfig


@pytest.fixture(scope="module")
def grid(tiny_workload):
    return run_grid(
        tiny_workload,
        grid_config=ThemeGridConfig(
            event_sizes=(2, 6), subscription_sizes=(2, 6), samples_per_cell=2
        ),
    )


class TestRoundTrip:
    def test_cells_preserved(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert set(loaded.cells) == set(grid.cells)
        for key in grid.cells:
            assert loaded.cells[key].mean_f1 == pytest.approx(
                grid.cells[key].mean_f1
            )
            assert loaded.cells[key].mean_throughput == pytest.approx(
                grid.cells[key].mean_throughput
            )
            assert loaded.cells[key].f1_error == pytest.approx(
                grid.cells[key].f1_error
            )

    def test_combinations_preserved(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        for key in grid.cells:
            original = [s.combination for s in grid.cells[key].samples]
            restored = [s.combination for s in loaded.cells[key].samples]
            assert original == restored

    def test_reporting_works_on_loaded_grid(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert format_heatmap(loaded) == format_heatmap(grid)
        assert format_error_table(loaded) == format_error_table(grid)

    def test_grid_config_preserved(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert loaded.grid_config.event_sizes == grid.grid_config.event_sizes
        assert (
            loaded.grid_config.samples_per_cell
            == grid.grid_config.samples_per_cell
        )


class TestValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError, match="not a repro grid"):
            load_grid(path)

    def test_rejects_wrong_version(self, grid, tmp_path):
        path = tmp_path / "old.json"
        save_grid(grid, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_grid(path)
