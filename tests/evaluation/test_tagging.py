"""Tests for the realistic-tagging-behavior module (paper Section 7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.tagging import (
    FreeThemeCombination,
    ZipfTagger,
    expected_overlap,
    sample_free_combination,
)

POOL = tuple(f"tag{i}" for i in range(40))


class TestFreeThemeCombination:
    def test_allows_containment_violation(self):
        combo = FreeThemeCombination(("a", "b"), ("b", "c"))
        assert combo.overlap() == 0.5

    def test_full_overlap(self):
        combo = FreeThemeCombination(("a",), ("a", "b"))
        assert combo.overlap() == 1.0

    def test_empty_sets(self):
        assert FreeThemeCombination((), ()).overlap() == 1.0


class TestZipfTagger:
    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            ZipfTagger(())

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfTagger(POOL, exponent=-1)

    def test_sample_distinct(self):
        tags = ZipfTagger(POOL).sample(10, random.Random(1))
        assert len(set(tags)) == 10

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            ZipfTagger(POOL).sample(len(POOL) + 1, random.Random(1))

    def test_popular_tags_dominate(self):
        tagger = ZipfTagger(POOL, exponent=1.5)
        rng = random.Random(5)
        counts = {tag: 0 for tag in POOL}
        for _ in range(400):
            for tag in tagger.sample(3, rng):
                counts[tag] += 1
        assert counts["tag0"] > counts["tag30"]

    def test_uniform_when_exponent_zero(self):
        tagger = ZipfTagger(POOL, exponent=0.0)
        rng = random.Random(5)
        counts = {tag: 0 for tag in POOL}
        for _ in range(2000):
            for tag in tagger.sample(2, rng):
                counts[tag] += 1
        # No tag should dominate by more than ~3x under uniformity.
        assert max(counts.values()) < 3 * max(1, min(counts.values()))


class TestSampleFreeCombination:
    @given(
        st.integers(1, 8),
        st.integers(1, 8),
        st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_overlap_close_to_target(self, event_size, sub_size, overlap):
        combo = sample_free_combination(
            POOL, event_size, sub_size, random.Random(7), overlap=overlap
        )
        small = min(event_size, sub_size)
        expected = round(overlap * small) / small
        assert abs(combo.overlap() - expected) < 1e-9

    def test_sizes_respected(self):
        combo = sample_free_combination(POOL, 3, 7, random.Random(1), overlap=0.5)
        assert len(combo.event_tags) == 3
        assert len(combo.subscription_tags) == 7

    def test_event_larger_than_subscription(self):
        combo = sample_free_combination(POOL, 7, 3, random.Random(1), overlap=0.0)
        assert len(combo.event_tags) == 7
        assert len(combo.subscription_tags) == 3

    def test_full_overlap_is_containment(self):
        combo = sample_free_combination(POOL, 3, 7, random.Random(1), overlap=1.0)
        assert set(combo.event_tags) <= set(combo.subscription_tags)

    def test_bad_overlap_rejected(self):
        with pytest.raises(ValueError):
            sample_free_combination(POOL, 2, 3, random.Random(1), overlap=1.5)


class TestExpectedOverlap:
    def test_zipf_raises_natural_overlap(self):
        uniform = expected_overlap(POOL, 5, 5, exponent=0.0, trials=150)
        zipfian = expected_overlap(POOL, 5, 5, exponent=1.5, trials=150)
        # Section 5.3.3's hypothesis: shared popularity distribution
        # produces overlap without agreement.
        assert zipfian > uniform

    def test_bounds(self):
        value = expected_overlap(POOL, 4, 8, trials=50)
        assert 0.0 <= value <= 1.0

    def test_full_pool_overlaps_fully(self):
        assert expected_overlap(POOL[:5], 5, 5, trials=10) == 1.0
