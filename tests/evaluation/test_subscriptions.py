"""Tests for evaluation subscription generation (Section 5.2.3)."""

import random

import pytest

from repro.datasets.seeds import SeedConfig, generate_seed_events
from repro.evaluation.subscriptions import (
    SubscriptionConfig,
    generate_subscriptions,
    partially_relax,
)
from repro.core.subscriptions import Subscription


@pytest.fixture(scope="module")
def seeds():
    return generate_seed_events(SeedConfig(count=24))


class TestGenerate:
    def test_count(self, seeds):
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=10))
        assert len(subs) == 10
        assert len(subs.exact) == len(subs.approximate) == len(subs.seed_indexes)

    def test_deterministic(self, seeds):
        config = SubscriptionConfig(count=10)
        assert generate_subscriptions(seeds, config) == generate_subscriptions(
            seeds, config
        )

    def test_exact_subscriptions_have_degree_zero(self, seeds):
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=10))
        for sub in subs.exact:
            assert sub.degree_of_approximation() == 0.0

    def test_full_degree_by_default(self, seeds):
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=10))
        for sub in subs.approximate:
            assert sub.degree_of_approximation() == 1.0

    def test_subscriptions_include_type(self, seeds):
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=10))
        for sub in subs.exact:
            assert any(p.attribute == "type" for p in sub.predicates)

    def test_exact_matches_its_seed(self, seeds):
        from repro.baselines.exact import ExactMatcher

        matcher = ExactMatcher()
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=10))
        for sub, seed_index in zip(subs.exact, subs.seed_indexes, strict=True):
            assert matcher.matches(sub, seeds[seed_index])

    def test_no_duplicate_subscriptions(self, seeds):
        subs = generate_subscriptions(seeds, SubscriptionConfig(count=16))
        keys = {
            tuple(sorted((p.attribute, str(p.value)) for p in sub.predicates))
            for sub in subs.exact
        }
        assert len(keys) == len(subs.exact)

    def test_predicate_bounds(self, seeds):
        config = SubscriptionConfig(count=10, min_predicates=2, max_predicates=3)
        subs = generate_subscriptions(seeds, config)
        for sub in subs.exact:
            assert 2 <= len(sub.predicates) <= 3

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            SubscriptionConfig(degree_of_approximation=1.5)
        with pytest.raises(ValueError):
            SubscriptionConfig(min_predicates=0)


class TestPartialRelax:
    def test_half_degree(self, seeds):
        sub = Subscription.create(
            exact={"type": "noise event", "city": "galway"}
        )
        relaxed = partially_relax(sub, 0.5, random.Random(1))
        assert relaxed.degree_of_approximation() == 0.5

    def test_full_degree_delegates_to_relax(self):
        sub = Subscription.create(exact={"a": "x"})
        assert partially_relax(sub, 1.0, random.Random(0)) == sub.relax()

    def test_config_degree_respected(self, seeds):
        config = SubscriptionConfig(count=10, degree_of_approximation=0.5)
        subs = generate_subscriptions(seeds, config)
        for sub in subs.approximate:
            assert 0.0 < sub.degree_of_approximation() <= 0.75
