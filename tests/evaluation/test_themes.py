"""Tests for theme combination sampling (Section 5.2.4)."""

import pytest

from repro.evaluation.themes import (
    ThemeCombination,
    ThemeGridConfig,
    sample_theme_combinations,
    theme_pool,
)


class TestThemeCombination:
    def test_containment_enforced(self):
        with pytest.raises(ValueError):
            ThemeCombination(event_tags=("a", "b"), subscription_tags=("b", "c"))

    def test_valid_subset(self):
        combo = ThemeCombination(event_tags=("a",), subscription_tags=("a", "b"))
        assert set(combo.event_tags) <= set(combo.subscription_tags)

    def test_empty_tags_allowed(self):
        ThemeCombination(event_tags=(), subscription_tags=())


class TestThemePool:
    def test_pool_is_top_terms(self, thesaurus):
        assert theme_pool(thesaurus) == thesaurus.top_terms()

    def test_domain_restriction(self, thesaurus):
        pool = theme_pool(thesaurus, ("energy",))
        assert pool == thesaurus.micro("energy").top_terms


class TestSampling:
    def config(self):
        return ThemeGridConfig(
            event_sizes=(1, 2, 5),
            subscription_sizes=(2, 5),
            samples_per_cell=3,
        )

    def test_grid_shape(self, thesaurus):
        grid = sample_theme_combinations(thesaurus, self.config())
        assert set(grid) == {(e, s) for e in (1, 2, 5) for s in (2, 5)}
        for combos in grid.values():
            assert len(combos) == 3

    def test_sizes_respected(self, thesaurus):
        grid = sample_theme_combinations(thesaurus, self.config())
        for (event_size, sub_size), combos in grid.items():
            for combo in combos:
                assert len(combo.event_tags) == event_size
                assert len(combo.subscription_tags) == sub_size

    def test_containment_always_holds(self, thesaurus):
        grid = sample_theme_combinations(thesaurus, self.config())
        for combos in grid.values():
            for combo in combos:
                small, large = sorted(
                    (set(combo.event_tags), set(combo.subscription_tags)),
                    key=len,
                )
                assert small <= large

    def test_equal_sizes_equal_sets(self, thesaurus):
        grid = sample_theme_combinations(
            thesaurus,
            ThemeGridConfig(event_sizes=(4,), subscription_sizes=(4,),
                            samples_per_cell=2),
        )
        for combo in grid[(4, 4)]:
            assert set(combo.event_tags) == set(combo.subscription_tags)

    def test_deterministic(self, thesaurus):
        a = sample_theme_combinations(thesaurus, self.config())
        b = sample_theme_combinations(thesaurus, self.config())
        assert a == b

    def test_tags_drawn_from_pool(self, thesaurus):
        pool = set(theme_pool(thesaurus))
        grid = sample_theme_combinations(thesaurus, self.config())
        for combos in grid.values():
            for combo in combos:
                assert set(combo.subscription_tags) <= pool

    def test_oversized_request_rejected(self, thesaurus):
        config = ThemeGridConfig(
            event_sizes=(1000,), subscription_sizes=(1,), samples_per_cell=1
        )
        with pytest.raises(ValueError):
            sample_theme_combinations(thesaurus, config)

    def test_paper_scale_is_30x30x5(self, thesaurus):
        config = ThemeGridConfig.paper_scale()
        assert len(config.event_sizes) == 30
        assert len(config.subscription_sizes) == 30
        assert config.samples_per_cell == 5
