"""Tests for the exact relevance ground truth (Section 5.2.3)."""

import pytest

from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription
from repro.evaluation.groundtruth import build_ground_truth, is_relevant
from repro.knowledge.rewrite import Canonicalizer


@pytest.fixture(scope="module")
def canon(thesaurus):
    return Canonicalizer(thesaurus)


EVENT = Event.create(
    payload={
        "type": "rising electricity usage event",
        "device": "laptop",
        "office": "room 112",
    }
)


class TestIsRelevant:
    def test_synonym_replacement_is_relevant(self, canon):
        sub = Subscription.create(
            approximate={"type": "increased energy consumption event"}
        )
        assert is_relevant(sub, EVENT, canon)

    def test_exact_side_requires_verbatim(self, canon):
        sub = Subscription.create(exact={"type": "increased energy consumption event"})
        assert not is_relevant(sub, EVENT, canon)

    def test_exact_side_matches_verbatim(self, canon):
        sub = Subscription.create(exact={"office": "room 112"})
        assert is_relevant(sub, EVENT, canon)

    def test_contrast_terms_not_relevant(self, canon):
        sub = Subscription.create(
            approximate={"type": "decreased energy consumption event"}
        )
        assert not is_relevant(sub, EVENT, canon)

    def test_approximate_attribute_side(self, canon):
        event = Event.create(payload={"appliance": "laptop"})
        relaxed = Subscription.create(approximate={"device": "laptop"})
        exact_attr = Subscription.create(
            predicates=[Predicate("device", "laptop", approx_value=True)]
        )
        assert is_relevant(relaxed, event, canon)
        assert not is_relevant(exact_attr, event, canon)

    def test_injective_assignment_required(self, canon):
        # Two predicates cannot both map to the same single tuple.
        event = Event.create(payload={"device": "laptop"})
        sub = Subscription.create(
            approximate={"device": "laptop", "appliance": "computer"}
        )
        assert not is_relevant(sub, event, canon)

    def test_injective_assignment_found_when_possible(self, canon):
        event = Event.create(
            payload={"device": "laptop", "appliance": "refrigerator"}
        )
        sub = Subscription.create(
            approximate={"device": "computer", "appliance": "fridge"}
        )
        assert is_relevant(sub, event, canon)

    def test_more_predicates_than_tuples(self, canon):
        event = Event.create(payload={"a": "x"})
        sub = Subscription.create(approximate={"device": "laptop"},
                                  exact={"office": "room 112"})
        assert not is_relevant(sub, event, canon)

    def test_numeric_values_compare_exactly(self, canon):
        event = Event.create(payload={"count": 3})
        assert is_relevant(
            Subscription.create(exact={"count": 3}), event, canon
        )
        assert not is_relevant(
            Subscription.create(exact={"count": 4}), event, canon
        )


class TestBuildGroundTruth:
    def test_indexes_align(self, canon):
        events = [
            EVENT,
            Event.create(payload={"type": "parking space occupied event"}),
        ]
        subs = [
            Subscription.create(
                approximate={"type": "increased energy consumption event"}
            ),
            Subscription.create(
                approximate={"type": "parking space occupied event"}
            ),
        ]
        truth = build_ground_truth(subs, events, canon)
        assert truth.relevant_to(0) == frozenset({0})
        assert truth.relevant_to(1) == frozenset({1})
        assert truth.total_relevant_pairs() == 2

    def test_accepts_expanded_events(self, tiny_workload):
        # The workload builder passes ExpandedEvent wrappers.
        truth = tiny_workload.ground_truth
        assert len(truth.relevant_sets) == len(tiny_workload.subscriptions)

    def test_isomorphism_with_exact_seed_matching(self, tiny_workload):
        """The paper's isomorphism: a faithful expanded variant is
        relevant to the approximate subscription exactly when its seed
        exactly matches the exact subscription."""
        from repro.baselines.exact import ExactMatcher

        exact = ExactMatcher()
        workload = tiny_workload
        for sub_index in range(len(workload.subscriptions)):
            exact_sub = workload.subscriptions.exact[sub_index]
            relevant = workload.ground_truth.relevant_to(sub_index)
            for event_index, expanded in enumerate(workload.expanded):
                if expanded.distractor:
                    continue
                seed = workload.seeds[expanded.seed_index]
                if exact.matches(exact_sub, seed):
                    assert event_index in relevant, (sub_index, event_index)
