"""Tests for workload construction (Figure 6 pipeline)."""

from repro.evaluation.workload import WorkloadConfig, build_workload


class TestConfigs:
    def test_tiny_smaller_than_small(self):
        tiny, small = WorkloadConfig.tiny(), WorkloadConfig.small()
        assert tiny.seeds.count < small.seeds.count
        assert tiny.subscriptions.count < small.subscriptions.count

    def test_paper_matches_paper_dimensions(self):
        paper = WorkloadConfig.paper()
        assert paper.seeds.count == 166
        assert paper.subscriptions.count == 94
        assert paper.themes.samples_per_cell == 5
        variants = paper.expansion
        assert variants.variants_per_seed + variants.distractors_per_seed == 89


class TestBuildWorkload:
    def test_tiny_workload_consistent(self, tiny_workload):
        wl = tiny_workload
        assert len(wl.seeds) == wl.config.seeds.count
        assert len(wl.events) == len(wl.expanded)
        assert len(wl.ground_truth.relevant_sets) == len(wl.subscriptions)

    def test_every_subscription_has_relevant_events(self, tiny_workload):
        # Variant 0 of the matching seed is always relevant.
        for relevant in tiny_workload.ground_truth.relevant_sets:
            assert relevant

    def test_events_carry_no_theme_yet(self, tiny_workload):
        for event in tiny_workload.events[:20]:
            assert event.theme == frozenset()

    def test_summary_mentions_sizes(self, tiny_workload):
        summary = tiny_workload.summary()
        assert str(len(tiny_workload.events)) in summary
        assert str(len(tiny_workload.seeds)) in summary

    def test_distractors_present(self, tiny_workload):
        assert any(item.distractor for item in tiny_workload.expanded)

    def test_deterministic(self, tiny_workload):
        rebuilt = build_workload(WorkloadConfig.tiny())
        assert rebuilt.events == tiny_workload.events
        assert rebuilt.subscriptions == tiny_workload.subscriptions
        assert (
            rebuilt.ground_truth.relevant_sets
            == tiny_workload.ground_truth.relevant_sets
        )
