"""Tests for the terminal reporting helpers."""

import pytest

from repro.evaluation.harness import run_grid
from repro.evaluation.reporting import (
    format_comparison,
    format_error_table,
    format_heatmap,
    format_table,
)
from repro.evaluation.themes import ThemeGridConfig


@pytest.fixture(scope="module")
def grid(tiny_workload):
    config = ThemeGridConfig(
        event_sizes=(2, 6), subscription_sizes=(2, 6), samples_per_cell=1
    )
    return run_grid(tiny_workload, grid_config=config)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(("a", "long header"), [("x", 1), ("yy", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long header" in lines[0]
        assert set(lines[1]) <= {"-", " "}


class TestHeatmap:
    def test_axes_and_origin(self, grid):
        text = format_heatmap(grid, value="f1")
        lines = text.splitlines()
        assert lines[0].startswith("sub\\ev")
        # Largest subscription size printed first (origin bottom-left).
        assert lines[2].strip().startswith("6")

    def test_baseline_marker(self, grid):
        text = format_heatmap(grid, value="f1", baseline=0.0)
        assert "*" in text
        assert "above non-thematic baseline" in text

    def test_throughput_variant(self, grid):
        text = format_heatmap(
            grid, value="throughput", cell_format="{:>6.0f}"
        )
        assert "sub\\ev" in text


class TestErrorTable:
    def test_f1_rows(self, grid):
        text = format_error_table(grid, value="f1")
        assert "mean F1" in text
        assert "%" in text

    def test_throughput_rows(self, grid):
        text = format_error_table(grid, value="throughput")
        assert "events/sec" in text


def test_format_comparison():
    text = format_comparison(
        [("F1", "62%", "64%")], title="Baseline"
    )
    assert "Baseline" in text
    assert "paper" in text and "measured" in text
    assert "62%" in text
