"""TraceContext: id shapes, child derivation, immutability."""

import dataclasses

import pytest

from repro.obs.context import TraceContext, new_span_id, new_trace_id


class TestIds:
    def test_trace_id_is_16_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # parses as hex

    def test_span_id_is_8_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 8
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(256)}) == 256


class TestTraceContext:
    def test_child_keeps_trace_id_and_sampling(self):
        parent = TraceContext(
            trace_id=new_trace_id(), span_id=new_span_id(), sampled=False
        )
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.sampled is parent.sampled
        assert child.span_id != parent.span_id

    def test_sampled_defaults_true(self):
        ctx = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        assert ctx.sampled is True

    def test_frozen(self):
        ctx = TraceContext(trace_id=new_trace_id(), span_id=new_span_id())
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.trace_id = "0" * 16
