"""Flight recorder: windowing, rate limiting, dump format, global hooks."""

import json

import pytest

from repro.obs.clock import FakeClock
from repro.obs.flightrec import FLIGHT_RECORDER, FlightRecorder, trigger_dump
from repro.obs.registry import get_registry


def make_recorder(tmp_path, **kwargs):
    clock = FakeClock(start=100.0, epoch=1_700_000_000.0)
    recorder = FlightRecorder(clock=clock, **kwargs)
    recorder.enable(tmp_path)
    return recorder, clock


def record_span(recorder, clock, name="stage", offset=0.0, **kwargs):
    defaults = dict(
        trace_id="t" * 16,
        span_id="s" * 8,
        parent_span_id=None,
        thread_name="MainThread",
        attributes=None,
    )
    defaults.update(kwargs)
    recorder.record(clock.monotonic() - offset, 0.001, name, **defaults)


class TestValidation:
    def test_rejects_bad_capacity_and_window(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(window=0.0)


class TestBuffer:
    def test_capacity_evicts_oldest(self, tmp_path):
        recorder, clock = make_recorder(tmp_path, capacity=4)
        for i in range(10):
            record_span(recorder, clock, name=f"span{i}")
        assert len(recorder) == 4

    def test_enable_clears_previous_run(self, tmp_path):
        recorder, clock = make_recorder(tmp_path)
        record_span(recorder, clock)
        recorder.enable(tmp_path)
        assert len(recorder) == 0


class TestDump:
    def test_dump_filters_to_window(self, tmp_path):
        recorder, clock = make_recorder(tmp_path, window=10.0)
        record_span(recorder, clock, name="ancient", offset=60.0)
        record_span(recorder, clock, name="recent", offset=1.0)
        path = recorder.dump(tmp_path / "out.json", reason="test")
        document = json.loads(path.read_text())
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert names == {"recent"}

    def test_dump_carries_ids_and_incident_header(self, tmp_path):
        recorder, clock = make_recorder(tmp_path)
        record_span(
            recorder,
            clock,
            parent_span_id="p" * 8,
            attributes={"subscriber": 3},
        )
        path = recorder.dump(
            tmp_path / "out.json", reason="breaker_open", detail="sub 3"
        )
        document = json.loads(path.read_text())
        other = document["otherData"]
        assert other["reason"] == "breaker_open"
        assert other["detail"] == "sub 3"
        assert other["spans"] == 1
        # Wall-clock ISO-8601 stamp from the injected clock's epoch.
        assert other["dumped_at"].startswith("2023-11-1")
        assert other["dumped_at"].endswith("Z")
        event = next(e for e in document["traceEvents"] if e["ph"] == "X")
        assert event["args"]["trace_id"] == "t" * 16
        assert event["args"]["parent_span_id"] == "p" * 8
        assert event["args"]["subscriber"] == 3

    def test_dump_names_threads(self, tmp_path):
        recorder, clock = make_recorder(tmp_path)
        record_span(recorder, clock, thread_name="shard0")
        record_span(recorder, clock, thread_name="shard1")
        document = json.loads(
            recorder.dump(tmp_path / "out.json", reason="x").read_text()
        )
        meta = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert meta == {"shard0", "shard1"}


class TestTrigger:
    def test_trigger_writes_sequenced_sanitized_file(self, tmp_path):
        recorder, clock = make_recorder(tmp_path)
        record_span(recorder, clock)
        path = recorder.trigger("degraded mode/trip!")
        assert path is not None
        assert path.name == "flightrec_001_degraded-mode-trip-.json"

    def test_trigger_rate_limited_and_counted(self, tmp_path):
        recorder, clock = make_recorder(tmp_path, min_dump_interval=5.0)
        record_span(recorder, clock)
        before = (
            get_registry().snapshot()["counters"].get("flightrec.suppressed", 0)
        )
        assert recorder.trigger("first") is not None
        assert recorder.trigger("storm") is None  # inside the interval
        after = (
            get_registry().snapshot()["counters"].get("flightrec.suppressed", 0)
        )
        assert after == before + 1
        clock.sleep(6.0)
        assert recorder.trigger("later") is not None

    def test_trigger_noop_when_disabled(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        assert recorder.trigger("nope") is None


class TestGlobalHook:
    def test_trigger_dump_noop_until_enabled(self, tmp_path):
        assert not FLIGHT_RECORDER.enabled
        assert trigger_dump("incident") is None

    def test_trigger_dump_routes_to_global_recorder(self, tmp_path):
        FLIGHT_RECORDER.enable(tmp_path, clock=FakeClock(start=50.0))
        try:
            FLIGHT_RECORDER.record(
                49.0, 0.01, "stage", None, None, None, "MainThread", None
            )
            path = trigger_dump("incident", "detail")
            assert path is not None and path.parent == tmp_path
        finally:
            FLIGHT_RECORDER.disable()
