"""Bench regression detection: flattening, direction, judging, reports."""

import json

import pytest

from repro.obs.benchdiff import (
    DEFAULT_TOLERANCE,
    DiffReport,
    classify_metric,
    compare_artifacts,
    compare_metrics,
    diff_directories,
    flatten_metrics,
    render_markdown,
)


class TestFlatten:
    def test_nested_paths_and_numbers_only(self):
        flat = flatten_metrics(
            {
                "serial": {"mean_eps": 100.0, "unit": "ev/s"},
                "speedup": 2,
                "cells": [1, 2, 3],
                "converged": True,
            }
        )
        assert flat == {"serial.mean_eps": 100.0, "speedup": 2.0}


class TestClassify:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("serial.mean_eps", "higher"),
            ("thematic.events_per_second", "higher"),  # beats "second"
            ("match.latency_p99", "lower"),
            ("elapsed_seconds", "lower"),
            ("serial.runs", "info"),
            ("config.max_batch", "info"),
            ("mystery.metric", "info"),
        ],
    )
    def test_direction(self, path, expected):
        assert classify_metric(path) == expected


class TestCompareMetrics:
    def test_regression_improvement_and_ok(self):
        deltas = {
            d.metric: d
            for d in compare_metrics(
                {
                    "mean_eps": 100.0,
                    "latency_p99": 1.0,
                    "runs": 3,
                    "zero_eps": 0.0,
                },
                {
                    "mean_eps": 75.0,  # -25% throughput: regression
                    "latency_p99": 0.5,  # -50% latency: improvement
                    "runs": 300,  # info: never judged
                    "zero_eps": 5.0,  # baseline 0: info
                },
            )
        }
        assert deltas["mean_eps"].status == "regression"
        assert deltas["latency_p99"].status == "improved"
        assert deltas["runs"].status == "info"
        assert deltas["zero_eps"].status == "info"

    def test_within_tolerance_is_ok(self):
        (delta,) = compare_metrics({"mean_eps": 100.0}, {"mean_eps": 95.0})
        assert delta.status == "ok"
        assert delta.delta == pytest.approx(-0.05)

    def test_baseline_only_metrics_are_skipped(self):
        deltas = compare_metrics(
            {"mean_eps": 1.0, "old_only": 2.0}, {"mean_eps": 1.0}
        )
        assert [d.metric for d in deltas] == ["mean_eps"]

    def test_current_only_metrics_are_informational_new_rows(self):
        """A bench that grew a measurement must not regress or vanish."""
        deltas = compare_metrics(
            {"mean_eps": 1.0, "old_only": 2.0}, {"mean_eps": 1.0, "new_only": 3.0}
        )
        assert [d.metric for d in deltas] == ["mean_eps", "new_only"]
        new_row = deltas[1]
        assert new_row.status == "new"
        assert new_row.current == 3.0
        assert new_row.delta == 0.0

    def test_new_rows_never_fail_the_comparison(self):
        comparison = compare_artifacts(
            {"bench": "b", "scale": "tiny", "metrics": {"eps": 10.0}},
            {"bench": "b", "scale": "tiny",
             "metrics": {"eps": 10.0, "kernel_eps": 50.0}},
        )
        assert comparison.status == "ok"
        assert {d.status for d in comparison.deltas} == {"ok", "new"}


class TestCompareArtifacts:
    def test_scale_mismatch_is_skipped_not_compared(self):
        comparison = compare_artifacts(
            {"bench": "fig9", "scale": "small", "metrics": {"eps": 100.0}},
            {"bench": "fig9", "scale": "paper", "metrics": {"eps": 1.0}},
        )
        assert comparison.status == "skipped"
        assert "scale mismatch" in comparison.note
        assert comparison.deltas == ()


def write_artifact(directory, name, eps, scale="small"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(
            {
                "schema": "repro.bench/v1",
                "bench": name,
                "scale": scale,
                "metrics": {"mean_eps": eps},
            }
        )
    )


class TestDiffDirectories:
    def test_pairing_and_missing_bookkeeping(self, tmp_path):
        write_artifact(tmp_path / "base", "shared", 100.0)
        write_artifact(tmp_path / "base", "base_only", 100.0)
        write_artifact(tmp_path / "cur", "shared", 99.0)
        write_artifact(tmp_path / "cur", "cur_only", 1.0)
        report = diff_directories(tmp_path / "base", tmp_path / "cur")
        assert report.compared == 1
        assert report.ok
        assert report.missing_current == ("base_only",)
        assert report.missing_baseline == ("cur_only",)
        assert report.tolerance == DEFAULT_TOLERANCE

    def test_twenty_percent_drop_trips_default_tolerance(self, tmp_path):
        write_artifact(tmp_path / "base", "fig9", 100.0)
        write_artifact(tmp_path / "cur", "fig9", 80.0)
        report = diff_directories(tmp_path / "base", tmp_path / "cur")
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "mean_eps"
        assert regression.delta == pytest.approx(-0.20)

    def test_custom_tolerance_absorbs_the_same_drop(self, tmp_path):
        write_artifact(tmp_path / "base", "fig9", 100.0)
        write_artifact(tmp_path / "cur", "fig9", 80.0)
        report = diff_directories(
            tmp_path / "base", tmp_path / "cur", tolerance=0.25
        )
        assert report.ok


class TestMarkdown:
    def test_trend_table_flags_regressions(self, tmp_path):
        write_artifact(tmp_path / "base", "fig9", 100.0)
        write_artifact(tmp_path / "cur", "fig9", 70.0)
        report = diff_directories(tmp_path / "base", tmp_path / "cur")
        markdown = render_markdown(report)
        assert "## fig9 — regression" in markdown
        assert "**REGRESSION**" in markdown
        assert "| mean_eps | 100 | 70 | -30.0% |" in markdown

    def test_trend_table_renders_new_rows_without_fake_baseline(self):
        report = DiffReport(
            comparisons=(
                compare_artifacts(
                    {"bench": "kern", "scale": "tiny", "metrics": {"eps": 5.0}},
                    {"bench": "kern", "scale": "tiny",
                     "metrics": {"eps": 5.0, "fresh_eps": 9.0}},
                ),
            ),
            missing_current=(),
            missing_baseline=(),
            tolerance=DEFAULT_TOLERANCE,
        )
        markdown = render_markdown(report)
        assert "| fresh_eps | – | 9 | – | new |" in markdown
