"""Offline trace reconstruction: loading, dedupe, summaries, trees."""

import json

from repro.obs.traceview import (
    build_trace_index,
    jsonl_to_chrome,
    load_span_records,
    render_trace_tree,
    summarize_traces,
)

TRACE = "a" * 16


def span(name, span_id, parent=None, start=0.0, duration_ms=1.0, **attrs):
    return {
        "span": name,
        "start": start,
        "duration_ms": duration_ms,
        "trace_id": TRACE,
        "span_id": span_id,
        "parent_span_id": parent,
        "attributes": attrs,
    }


def write_jsonl(path, records):
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records)
    )


class TestLoading:
    def test_reads_jsonl_and_chrome_dumps(self, tmp_path):
        write_jsonl(tmp_path / "spans.jsonl", [span("root", "r" * 8)])
        (tmp_path / "dump.json").write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {
                            "name": "attempt",
                            "ph": "X",
                            "ts": 2_000_000.0,
                            "dur": 500.0,
                            "args": {
                                "trace_id": TRACE,
                                "span_id": "b" * 8,
                                "subscriber": 1,
                            },
                        },
                        {"name": "thread_name", "ph": "M", "args": {}},
                    ]
                }
            )
        )
        records = load_span_records([tmp_path])
        assert {record["span"] for record in records} == {"root", "attempt"}
        attempt = next(r for r in records if r["span"] == "attempt")
        assert attempt["start"] == 2.0
        assert attempt["duration_ms"] == 0.5
        assert attempt["attributes"] == {"subscriber": 1}

    def test_duplicate_spans_across_artifacts_load_once(self, tmp_path):
        # A --trace-out directory holds the same span in spans.jsonl,
        # trace.json, and a flight-recorder dump; it must render once.
        record = span("root", "r" * 8)
        write_jsonl(tmp_path / "spans.jsonl", [record])
        (tmp_path / "trace.json").write_text(
            json.dumps(jsonl_to_chrome([record]))
        )
        records = load_span_records([tmp_path])
        assert len(records) == 1


class TestIndexAndSummary:
    def test_index_groups_and_sorts_by_start(self):
        records = [
            span("late", "b" * 8, start=2.0),
            span("early", "c" * 8, start=1.0),
            {"span": "untraced", "start": 0.0, "duration_ms": 0.0,
             "trace_id": None, "span_id": None, "parent_span_id": None,
             "attributes": {}},
        ]
        index = build_trace_index(records)
        assert list(index) == [TRACE]
        assert [s["span"] for s in index[TRACE]] == ["early", "late"]

    def test_summary_row(self):
        records = [
            span("broker.publish", "r" * 8, start=0.0),
            span("deliver.attempt", "d" * 8, parent="r" * 8, start=0.5),
        ]
        (row,) = summarize_traces(records)
        assert row["trace_id"] == TRACE
        assert row["spans"] == 2
        assert row["root"] == "broker.publish"
        assert row["names"] == ["broker.publish", "deliver.attempt"]


class TestRenderTree:
    def test_tree_indents_children_with_offsets(self):
        records = [
            span("broker.publish", "r" * 8, start=1.0, duration_ms=5.0),
            span(
                "deliver.attempt",
                "d" * 8,
                parent="r" * 8,
                start=1.002,
                attempt=1,
            ),
        ]
        rendering = render_trace_tree(records, TRACE)
        lines = rendering.splitlines()
        assert lines[0] == f"trace {TRACE} · 2 span(s)"
        assert "broker.publish" in lines[1] and not lines[1].startswith("  ")
        assert lines[2].startswith("  ")
        assert "deliver.attempt" in lines[2]
        assert "+    2.000ms" in lines[2]
        assert "attempt=1" in lines[2]

    def test_unknown_trace_reports_no_spans(self):
        assert render_trace_tree([], "f" * 16).endswith("no spans found")

    def test_orphaned_parent_renders_at_top_level(self):
        records = [span("lonely", "x" * 8, parent="gone4444")]
        rendering = render_trace_tree(records, TRACE)
        assert "lonely" in rendering


class TestChromeConversion:
    def test_jsonl_to_chrome_roundtrip(self):
        records = [span("root", "r" * 8, start=3.0, duration_ms=2.0, k=1)]
        document = jsonl_to_chrome(records)
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 3.0 * 1e6
        assert event["dur"] == 2.0 * 1e3
        assert event["args"]["trace_id"] == TRACE
        assert event["args"]["k"] == 1
