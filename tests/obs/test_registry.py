"""Unit tests for the metrics registry."""

import threading

import pytest

from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        workers = [threading.Thread(target=bump) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == 8000

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.mean == pytest.approx(2.0)

    def test_percentiles_within_bucket_error(self):
        histogram = Histogram("h")
        for i in range(1, 1001):
            histogram.record(i / 1000.0)
        # Geometric buckets carry ~5% relative error.
        assert histogram.percentile(0.5) == pytest.approx(0.5, rel=0.10)
        assert histogram.percentile(0.99) == pytest.approx(0.99, rel=0.10)

    def test_percentile_clamped_to_observed_range(self):
        histogram = Histogram("h")
        histogram.record(0.123)
        assert histogram.percentile(0.5) == pytest.approx(0.123)
        assert histogram.percentile(0.99) == pytest.approx(0.123)

    def test_zero_and_negative_values(self):
        histogram = Histogram("h")
        histogram.record(0.0)
        histogram.record(-1.0)
        histogram.record(1.0)
        assert histogram.count == 3
        assert histogram.percentile(0.25) == 0.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.99) == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.record(2.0)
        summary = histogram.summary()
        for key in ("count", "sum", "mean", "min", "max", "p50", "p90", "p99"):
            assert key in summary


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")
        assert registry.gauge("z") is registry.gauge("z")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(0.5)
        registry.histogram("c").record(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 2}
        assert snapshot["gauges"] == {"b": 0.5}
        assert snapshot["histograms"]["c"]["count"] == 1

    def test_snapshot_under_concurrent_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def write():
            while not stop.is_set():
                registry.counter("n").inc()
                registry.histogram("h").record(0.001)

        worker = threading.Thread(target=write)
        worker.start()
        try:
            for _ in range(50):
                snapshot = registry.snapshot()
                assert snapshot["counters"]["n"] >= 0
        finally:
            stop.set()
            worker.join()

    def test_reset_clears_all(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").record(1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 0
        assert snapshot["histograms"]["h"]["count"] == 0

    def test_default_registry_swap(self):
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
