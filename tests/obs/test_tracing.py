"""Unit tests for pipeline tracing."""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import TRACER, Tracer, traced


@pytest.fixture()
def tracer():
    instance = Tracer()
    yield instance
    instance.disable()


class TestDisabledMode:
    def test_disabled_by_default(self, tracer):
        assert not tracer.enabled

    def test_disabled_span_is_shared_noop(self, tracer):
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second
        with first:
            pass

    def test_disabled_records_nothing(self, tracer):
        registry = MetricsRegistry()
        tracer.enable(registry=registry)
        tracer.disable()
        with tracer.span("stage"):
            pass
        assert registry.snapshot()["histograms"] == {}


class TestEnabledMode:
    def test_span_aggregates_into_stage_histogram(self, tracer):
        registry = MetricsRegistry()
        tracer.enable(registry=registry)
        with tracer.span("matcher.match"):
            pass
        with tracer.span("matcher.match"):
            pass
        summary = registry.snapshot()["histograms"]["stage.matcher.match"]
        assert summary["count"] == 2
        assert summary["max"] >= 0.0

    def test_stage_timings_strips_prefix(self, tracer):
        tracer.enable(registry=MetricsRegistry())
        with tracer.span("broker.publish"):
            pass
        assert "broker.publish" in tracer.stage_timings()

    def test_nested_spans_record_parent(self, tracer, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer.enable(registry=MetricsRegistry(), sink=str(sink))
        with tracer.span("outer"):
            with tracer.span("inner", detail=3):
                pass
        tracer.disable()
        records = [
            json.loads(line) for line in sink.read_text().splitlines()
        ]
        # Spans close innermost-first.
        assert [r["span"] for r in records] == ["inner", "outer"]
        assert records[0]["parent"] == "outer"
        assert records[0]["attributes"] == {"detail": 3}
        assert "parent" not in records[1]
        assert all(r["duration_ms"] >= 0.0 for r in records)

    def test_file_sink_appends(self, tracer, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer.enable(registry=MetricsRegistry(), sink=str(sink))
        with tracer.span("one"):
            pass
        tracer.disable()
        tracer.enable(registry=MetricsRegistry(), sink=str(sink))
        with tracer.span("two"):
            pass
        tracer.disable()
        assert len(sink.read_text().splitlines()) == 2

    def test_exception_still_closes_span(self, tracer):
        registry = MetricsRegistry()
        tracer.enable(registry=registry)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert registry.snapshot()["histograms"]["stage.boom"]["count"] == 1


class TestDecorator:
    def test_traced_decorator(self, tracer):
        registry = MetricsRegistry()

        @traced("work", tracer=tracer)
        def work(x):
            return x * 2

        assert work(2) == 4  # disabled: plain call
        tracer.enable(registry=registry)
        assert work(3) == 6
        assert registry.snapshot()["histograms"]["stage.work"]["count"] == 1


class TestGlobalTracer:
    def test_pipeline_spans_reach_registry(self, space):
        from repro.core.language import parse_event, parse_subscription
        from repro.core.matcher import ThematicMatcher
        from repro.semantics.measures import ThematicMeasure

        registry = MetricsRegistry()
        TRACER.enable(registry=registry)
        try:
            matcher = ThematicMatcher(ThematicMeasure(space))
            matcher.match(
                parse_subscription(
                    "({power}, {type= increased energy usage event~})"
                ),
                parse_event(
                    "({energy}, {type: increased energy consumption event})"
                ),
            )
        finally:
            TRACER.disable()
        stages = registry.snapshot()["histograms"]
        assert "stage.matcher.match" in stages
        assert "stage.matcher.similarity_matrix" in stages
        assert "stage.matcher.top_k" in stages
