"""Unit tests for bench artifacts and latency summaries."""

import json

import pytest

from repro.obs.artifacts import (
    SCHEMA,
    LatencySummary,
    artifact_path,
    load_bench_artifact,
    write_bench_artifact,
)


class TestLatencySummary:
    def test_from_seconds_percentiles(self):
        samples = [i / 100.0 for i in range(1, 101)]
        summary = LatencySummary.from_seconds(samples)
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.50, abs=0.02)
        assert summary.p90 == pytest.approx(0.90, abs=0.02)
        assert summary.p99 == pytest.approx(0.99, abs=0.02)
        assert summary.max == pytest.approx(1.0)

    def test_empty_samples(self):
        summary = LatencySummary.from_seconds([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_as_dict_ms_scaling(self):
        summary = LatencySummary.from_seconds([0.5])
        as_ms = summary.as_dict(unit="ms")
        assert as_ms["unit"] == "ms"
        assert as_ms["p50"] == pytest.approx(500.0)
        as_seconds = summary.as_dict()
        assert as_seconds["p50"] == pytest.approx(0.5)


class TestArtifacts:
    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_bench_artifact(
            "demo",
            {"f1": 0.7, "latency": {"p50": 1.0, "p99": 2.0}},
            directory=tmp_path,
            extra={"workload": "tiny"},
        )
        assert path == tmp_path / "BENCH_demo.json"
        document = load_bench_artifact("demo", tmp_path)
        assert document["schema"] == SCHEMA
        assert document["bench"] == "demo"
        assert document["workload"] == "tiny"
        assert document["metrics"]["f1"] == 0.7

    def test_artifact_is_valid_json_with_schema_first(self, tmp_path):
        write_bench_artifact("x", {}, directory=tmp_path)
        raw = (tmp_path / "BENCH_x.json").read_text()
        document = json.loads(raw)
        assert list(document)[0] == "schema"

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        assert artifact_path("y") == tmp_path / "BENCH_y.json"
        write_bench_artifact("y", {"ok": 1})
        assert (tmp_path / "BENCH_y.json").exists()

    def test_load_rejects_off_schema(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text('{"schema": "other/v9"}')
        with pytest.raises(ValueError):
            load_bench_artifact("bad", tmp_path)

    def test_numpy_scalars_serializable(self, tmp_path):
        import numpy as np

        write_bench_artifact(
            "np", {"value": np.float64(0.25)}, directory=tmp_path
        )
        assert load_bench_artifact("np", tmp_path)["metrics"]["value"] == 0.25
