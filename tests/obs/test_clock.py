"""Tests for the injectable clock protocol."""

import threading
import time

import pytest

from repro.obs.clock import MONOTONIC_CLOCK, Clock, FakeClock, MonotonicClock


class TestProtocol:
    def test_both_implementations_satisfy_clock(self):
        assert isinstance(MonotonicClock(), Clock)
        assert isinstance(FakeClock(), Clock)

    def test_module_singleton_is_monotonic(self):
        assert isinstance(MONOTONIC_CLOCK, MonotonicClock)


class TestMonotonicClock:
    def test_tracks_time_monotonic(self):
        clock = MonotonicClock()
        before = time.monotonic()
        reading = clock.monotonic()
        after = time.monotonic()
        assert before <= reading <= after

    def test_nonpositive_sleep_is_a_noop(self):
        clock = MonotonicClock()
        started = time.monotonic()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert time.monotonic() - started < 0.5


class TestFakeClock:
    def test_starts_at_origin(self):
        assert FakeClock().monotonic() == 0.0
        assert FakeClock(start=42.0).monotonic() == 42.0

    def test_sleep_advances_instead_of_blocking(self):
        clock = FakeClock()
        started = time.monotonic()
        clock.sleep(3600.0)
        assert time.monotonic() - started < 0.5  # did not actually block
        assert clock.monotonic() == 3600.0

    def test_advance_returns_new_reading(self):
        clock = FakeClock(start=1.0)
        assert clock.advance(2.5) == 3.5
        assert clock.monotonic() == 3.5

    def test_time_cannot_move_backwards(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_concurrent_advances_all_land(self):
        clock = FakeClock()
        threads = [
            threading.Thread(target=lambda: [clock.advance(1.0) for _ in range(100)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.monotonic() == pytest.approx(800.0)
