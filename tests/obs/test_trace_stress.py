"""Trace completeness under faults: one causal tree per event, always.

The tentpole invariant of the tracing subsystem: for every event a
broker accepts, whether it is ultimately delivered or dead-lettered,
the span log contains exactly one complete causal tree — a single root
(``broker.publish`` / ``broker.replay``) whose trace id is carried on
the delivery (``Delivery.trace``) or the dead-letter record
(``DeadLetterRecord.trace_id``), with every other span's parent
resolving inside the same trace. Hypothesis draws the fault plans; the
invariant must hold on the serial, threaded, and sharded brokers alike,
through retries, breaker rejections, and dead-lettering.
"""

import io
import json
import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.faults import CallbackFault, FaultInjector, FaultPlan
from repro.broker.reliability import DeliveryPolicy
from repro.broker.sharded import ShardedBroker
from repro.broker.threaded import ThreadedBroker
from repro.evaluation.brokers import sample_combination
from repro.evaluation.harness import thematic_matcher_factory
from repro.obs import TRACER, MetricsRegistry
from repro.obs.clock import FakeClock
from repro.obs.traceview import build_trace_index

BROKER_KINDS = ("serial", "threaded", "sharded")

#: Span names that may open a causal tree.
ROOT_SPANS = {"broker.publish", "broker.replay"}

#: Deterministic fast policy: retries on, no jitter, breaker armed low
#: enough that permanently-failing plans trip it mid-run.
POLICY = DeliveryPolicy(
    max_retries=2,
    backoff_base=0.01,
    backoff_cap=0.1,
    jitter=0.0,
    breaker_threshold=3,
    breaker_reset=1_000_000.0,
)

STRESS_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def fault_plans(draw, max_subscribers=4):
    count = draw(st.integers(min_value=0, max_value=2))
    subscribers = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_subscribers - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    callbacks = tuple(
        CallbackFault(
            subscriber=subscriber,
            kind=draw(st.sampled_from(["raise", "flaky", "hang"])),
            times=draw(st.integers(min_value=0, max_value=3)),
            hang_seconds=0.05,
        )
        for subscriber in subscribers
    )
    return FaultPlan(name="trace-stress", callbacks=callbacks)


def _build_broker(kind, matcher, config, clock):
    if kind == "serial":
        return ThematicBroker(matcher, config, clock=clock)
    if kind == "threaded":
        return ThreadedBroker(matcher, config, clock=clock)
    return ShardedBroker(matcher, config, clock=clock)


def run_traced(workload, kind, plan, policy=POLICY):
    """One faulted, fully-traced run.

    Returns ``(records, delivered_ids, dead_ids)``: the parsed span log
    plus the trace ids carried out of the broker on deliveries and
    dead-letter records.
    """
    combination = sample_combination(workload, seed=7)
    events = [
        event.with_theme(combination.event_tags)
        for event in workload.events[:12]
    ]
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate[:4]
    ]
    clock = FakeClock()
    injector = FaultInjector(plan, clock=clock)
    matcher = thematic_matcher_factory(workload)()
    matcher.measure = injector.wrap_measure(matcher.measure)
    config = BrokerConfig(
        delivery=policy, shards=2, max_batch=8, linger=0.0, workers=0
    )
    broker = _build_broker(kind, matcher, config, clock)
    sink = io.StringIO()
    # Every dead letter here is scripted; keep the log quiet.
    reliability_logger = logging.getLogger("repro.broker.reliability")
    previous_level = reliability_logger.level
    reliability_logger.setLevel(logging.CRITICAL)
    TRACER.enable(registry=MetricsRegistry(), sink=sink, sample_rate=1.0)
    try:
        handles = [
            broker.subscribe(
                subscription, injector.wrap_callback(subscriber_id)
            )
            for subscriber_id, subscription in enumerate(subscriptions)
        ]
        for event in events:
            broker.publish(event)
        if hasattr(broker, "flush"):
            broker.flush()
    finally:
        if hasattr(broker, "close"):
            broker.close()
        TRACER.disable()
        reliability_logger.setLevel(previous_level)
    deliveries = [
        delivery for handle in handles for delivery in handle.drain()
    ]
    assert all(delivery.trace is not None for delivery in deliveries)
    dead = broker.dead_letters.drain()
    assert all(record.trace_id is not None for record in dead)
    records = [
        json.loads(line)
        for line in sink.getvalue().splitlines()
        if line.strip()
    ]
    return (
        records,
        [delivery.trace.trace_id for delivery in deliveries],
        [record.trace_id for record in dead],
    )


def assert_complete_trees(records, delivered_ids, dead_ids):
    index = build_trace_index(records)
    for trace_id in set(delivered_ids) | set(dead_ids):
        spans = index.get(trace_id)
        assert spans, f"trace {trace_id} left no spans at all"
        span_ids = {span["span_id"] for span in spans}
        roots = [
            span for span in spans if span.get("parent_span_id") is None
        ]
        assert len(roots) == 1, (
            f"trace {trace_id}: expected one root, got "
            f"{[span['span'] for span in roots]}"
        )
        assert roots[0]["span"] in ROOT_SPANS
        for span in spans:
            parent = span.get("parent_span_id")
            assert parent is None or parent in span_ids, (
                f"trace {trace_id}: span {span['span']} has dangling "
                f"parent {parent}"
            )
    for trace_id in set(dead_ids):
        names = {span["span"] for span in index[trace_id]}
        assert "deliver.dead_letter" in names


class TestTraceCompleteness:
    @STRESS_SETTINGS
    @given(plan=fault_plans())
    @pytest.mark.parametrize("kind", BROKER_KINDS)
    def test_every_outcome_has_one_complete_tree(
        self, tiny_workload, kind, plan
    ):
        records, delivered_ids, dead_ids = run_traced(
            tiny_workload, kind, plan
        )
        assert delivered_ids or dead_ids  # the run did something
        assert_complete_trees(records, delivered_ids, dead_ids)

    @pytest.mark.parametrize("kind", BROKER_KINDS)
    def test_dead_letter_trace_carries_attempts_and_rejections(
        self, tiny_workload, kind
    ):
        """The acceptance scenario: a permanently failing subscriber.

        Its events' traces must contain the retry attempts and the
        dead-letter marker; once the breaker opens, later events carry
        a breaker-rejection marker under their own trace id instead.
        """
        # Subscriber 2 is the one this workload slice actually matches
        # against (the others see 0-1 events); faulting it guarantees
        # retries, a breaker trip, and dead letters.
        plan = FaultPlan(
            name="perma",
            callbacks=(CallbackFault(subscriber=2, kind="raise"),),
        )
        records, delivered_ids, dead_ids = run_traced(
            tiny_workload, kind, plan
        )
        assert dead_ids
        assert_complete_trees(records, delivered_ids, dead_ids)
        index = build_trace_index(records)
        attempted = [
            trace_id
            for trace_id in set(dead_ids)
            if any(
                span["span"] == "deliver.attempt"
                for span in index[trace_id]
            )
        ]
        assert attempted, "no dead-lettered trace recorded its attempts"
        rejected_traces = {
            record["trace_id"]
            for record in records
            if record["span"] == "deliver.breaker_rejected"
        }
        assert rejected_traces, "breaker never rejected anything"
        for trace_id in rejected_traces:
            roots = [
                span
                for span in index[trace_id]
                if span.get("parent_span_id") is None
            ]
            assert len(roots) == 1 and roots[0]["span"] in ROOT_SPANS
