"""Parity contract of the vectorized relatedness kernel.

The kernel (:mod:`repro.semantics.kernel`) reimplements projection and
distance over columnar numpy arrays; everything downstream — the
pipeline's bulk scoring stage, the process-shard workers — trusts two
properties pinned here:

* **scalar parity**: for every (term, theme, term, theme) lookup, in
  every (metric × normalize × recompute_idf × mode) configuration, the
  kernel's score is within ``PARITY_TOLERANCE`` of the scalar
  ``SparseVector`` path (projected weights are bit-identical by
  construction; only the norm/dot summation order differs, measured at
  ~1e-16 on the default corpus);
* **batch determinism**: ``score_batch`` over any list of lookups is
  *exactly* equal, float for float, to scoring each lookup alone — the
  kernel reduces with order-fixed ``einsum`` rows, never batch-shaped
  BLAS calls, so batching can never change a delivery decision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.semantics.columnar import ColumnarIndex
from repro.semantics.documents import DocumentSet
from repro.semantics.kernel import PARITY_TOLERANCE, KernelMeasure, RelatednessKernel
from repro.semantics.measures import CachedMeasure, NonThematicMeasure, ThematicMeasure
from repro.semantics.pvsm import ParametricVectorSpace

TOY = DocumentSet.from_texts(
    [
        "energy power grid consumption meter",
        "parking street car transport spot",
        "weather storm rain wind forecast",
        "energy meter building office monitor",
        "car engine power fuel energy",
        "office building room computer energy",
        "transport bus street city commute",
        "storm damage power outage grid",
        "rain water street flood drain",
        "computer laptop device office desk",
        "fuel price energy market power",
        "city building street office block",
    ]
)

TERMS = (
    "energy", "power", "street", "car", "storm", "office",
    "computer", "grid", "rain", "fuel", "zzzunknown",
)
TAGS = ("energy", "street", "storm", "office", "city", "nosuchtag")

_SPACES: dict[tuple[str, bool, bool], ParametricVectorSpace] = {}


def _space(metric: str, normalize: bool, recompute_idf: bool) -> ParametricVectorSpace:
    key = (metric, normalize, recompute_idf)
    if key not in _SPACES:
        _SPACES[key] = ParametricVectorSpace(
            TOY, metric=metric, normalize=normalize, recompute_idf=recompute_idf
        )
    return _SPACES[key]


lookups = st.tuples(
    st.sampled_from(TERMS),
    st.tuples(*[st.sampled_from(TAGS)] * 2) | st.just(()),
    st.sampled_from(TERMS),
    st.tuples(*[st.sampled_from(TAGS)] * 2) | st.just(()),
)
configs = st.tuples(
    st.sampled_from(("euclidean", "cosine")),
    st.booleans(),
    st.booleans(),
    st.sampled_from(("common", "own")),
)


class TestScalarParity:
    @given(config=configs, lookup=lookups)
    @settings(max_examples=120, deadline=None)
    def test_kernel_matches_scalar_within_documented_tolerance(
        self, config, lookup
    ):
        metric, normalize, recompute_idf, mode = config
        space = _space(metric, normalize, recompute_idf)
        scalar = ThematicMeasure(space, mode=mode).score(*lookup)
        kernel = ThematicMeasure(space, mode=mode, vectorized=True).score(*lookup)
        assert abs(kernel - scalar) <= PARITY_TOLERANCE

    @given(lookup=lookups)
    @settings(max_examples=60, deadline=None)
    def test_nonthematic_kernel_matches_scalar(self, lookup):
        space = _space("euclidean", True, True)
        scalar = NonThematicMeasure(space).score(*lookup)
        kernel = NonThematicMeasure(space, vectorized=True).score(*lookup)
        assert abs(kernel - scalar) <= PARITY_TOLERANCE

    def test_identical_terms_short_circuit_to_one(self):
        space = _space("euclidean", True, True)
        measure = ThematicMeasure(space, vectorized=True)
        assert measure.score("energy", ("office",), "Energy", ("street",)) == 1.0

    def test_unknown_terms_score_zero(self):
        space = _space("euclidean", True, True)
        measure = ThematicMeasure(space, vectorized=True)
        assert measure.score("zzzunknown", (), "qqqmissing", ()) == 0.0


class TestBatchDeterminism:
    @given(config=configs, batch=st.lists(lookups, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_batch_is_bit_identical_to_singles(self, config, batch):
        metric, normalize, recompute_idf, mode = config
        space = _space(metric, normalize, recompute_idf)
        measure = ThematicMeasure(space, mode=mode, vectorized=True)
        batched = measure.score_batch(batch)
        singles = [measure.score(*lookup) for lookup in batch]
        assert batched == singles  # exact equality, not approx

    def test_duplicate_pairs_in_one_batch_agree(self):
        space = _space("euclidean", True, True)
        measure = ThematicMeasure(space, vectorized=True)
        lookup = ("energy", ("office",), "car", ("street",))
        values = measure.score_batch([lookup] * 4)
        assert len(set(values)) == 1

    def test_cached_measure_batch_serves_hits_and_scores_misses(self):
        space = _space("euclidean", True, True)
        cached = CachedMeasure(ThematicMeasure(space, vectorized=True))
        assert cached.vectorized
        first = cached.score("energy", ("office",), "car", ("street",))
        batch = cached.score_batch(
            [
                ("energy", ("office",), "car", ("street",)),
                ("storm", ("city",), "rain", ()),
            ]
        )
        assert batch[0] == first
        assert batch[1] == cached.score("storm", ("city",), "rain", ())


class TestColumnarIndex:
    def test_rows_are_bit_identical_to_scalar_weights(self):
        space = _space("euclidean", True, True)
        columnar = ColumnarIndex.build(space.index)
        for token in ("energy", "street", "storm"):
            row = columnar.row(token)
            assert row is not None
            doc_ids, _, tfidf = row
            scalar = space.token_vector(token)
            assert {
                int(doc): float(w)
                for doc, w in zip(doc_ids, tfidf, strict=True)
                if w != 0.0
            } == dict(scalar.items())

    def test_unknown_token_has_no_row(self):
        columnar = ColumnarIndex.build(_space("euclidean", True, True).index)
        assert columnar.row("zzzunknown") is None
        assert "zzzunknown" not in columnar
        assert "energy" in columnar

    def test_space_builds_columnar_once(self):
        space = ParametricVectorSpace(TOY)
        assert space.columnar() is space.columnar()
        assert space.kernel() is space.kernel()


class TestKernelObservability:
    def test_counters_track_batches_and_pairs(self):
        space = _space("euclidean", True, True)
        registry = MetricsRegistry()
        kernel = RelatednessKernel(space.columnar(), registry=registry)
        measure = KernelMeasure(kernel)
        measure.score_batch(
            [
                ("energy", ("office",), "car", ("street",)),
                ("storm", (), "rain", ()),
            ]
        )
        counters = registry.snapshot()["counters"]
        assert counters["kernel.batches"] >= 1
        assert counters["kernel.pairs"] >= 2


class TestDefaultCorpusSpotParity:
    """One non-toy anchor: the corpus the benches actually run on."""

    def test_default_space_parity_sample(self, space):
        scalar = ThematicMeasure(space)
        kernel = ThematicMeasure(space, vectorized=True)
        for lookup in (
            ("energy", ("energy", "building"), "power", ("energy",)),
            ("parking", ("transport",), "street", ("transport", "city")),
            ("computer", (), "laptop", ()),
        ):
            assert kernel.score(*lookup) == pytest.approx(
                scalar.score(*lookup), abs=PARITY_TOLERANCE
            )


class TestSparseVectorNaNRejection:
    def test_nan_weight_is_rejected_at_construction(self):
        from repro.semantics.vectors import SparseVector

        with pytest.raises(ValueError, match="NaN weight"):
            SparseVector({3: float("nan")})

    def test_zero_weights_still_dropped_silently(self):
        from repro.semantics.vectors import SparseVector

        assert len(SparseVector({1: 0.0, 2: 1.0})) == 1
