"""Algebraic laws of the semantic substrate, checked property-based.

The matcher's correctness arguments (and the sharded broker's parity
argument) lean on :class:`SparseVector` behaving like a real vector
space and on Equation 6 being a monotone bijection from distances to
``(0, 1]``. These are the laws, stated as hypothesis properties over
arbitrary sparse vectors rather than hand-picked examples.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.space import relatedness_from_distance
from repro.semantics.vectors import ZERO_VECTOR, SparseVector

#: Weights bounded away from float extremes so squared sums stay finite.
weights = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.dictionaries(
    st.integers(min_value=0, max_value=50), weights, max_size=8
).map(SparseVector)
scalars = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestSparseVectorAlgebra:
    @given(a=vectors, b=vectors)
    def test_addition_commutes(self, a, b):
        assert a.add(b) == b.add(a)

    @given(a=vectors, b=vectors, c=vectors)
    def test_addition_associates(self, a, b, c):
        left = a.add(b).add(c)
        right = a.add(b.add(c))
        assert left.support() == right.support()
        for dim in left.support():
            assert left[dim] == pytest.approx(right[dim], rel=1e-9, abs=1e-9)

    @given(a=vectors)
    def test_zero_is_identity(self, a):
        assert a.add(ZERO_VECTOR) == a
        assert ZERO_VECTOR.add(a) == a

    @given(a=vectors, factor=scalars)
    def test_scaling_scales_the_norm(self, a, factor):
        assert a.scale(factor).norm() == pytest.approx(
            abs(factor) * a.norm(), rel=1e-9, abs=1e-9
        )

    @given(a=vectors)
    def test_normalized_is_unit_length(self, a):
        unit = a.normalized()
        if a.norm() == 0.0:
            assert unit is ZERO_VECTOR
        else:
            assert unit.norm() == pytest.approx(1.0, rel=1e-9)

    @given(a=vectors)
    def test_normalized_is_memoized(self, a):
        # Perf contract the hot distance path relies on: the scaled copy
        # is built once per vector, not once per term-pair touch.
        assert a.normalized() is a.normalized()

    @given(a=vectors, basis=st.frozensets(st.integers(0, 50), max_size=10))
    def test_restrict_projects_support(self, a, basis):
        restricted = a.restrict(basis)
        assert restricted.support() <= basis
        assert restricted.support() <= a.support()
        for dim in restricted.support():
            assert restricted[dim] == a[dim]

    @given(a=vectors, b=vectors)
    def test_dot_is_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-9, abs=1e-9)

    @given(a=vectors, b=vectors)
    def test_euclidean_distance_is_symmetric(self, a, b):
        assert a.euclidean_distance(b) == pytest.approx(
            b.euclidean_distance(a), rel=1e-9, abs=1e-6
        )

    @given(a=vectors)
    def test_distance_to_self_is_zero(self, a):
        # The ||a||^2 + ||b||^2 - 2ab formulation cancels; its absolute
        # error scales with the norm, so the bound must too.
        assert a.euclidean_distance(a) <= 1e-6 * (1.0 + a.norm())

    @given(a=vectors, b=vectors)
    def test_cosine_similarity_bounded(self, a, b):
        assert -1.0 <= a.cosine_similarity(b) <= 1.0


class TestRelatednessFromDistance:
    def test_zero_distance_is_perfect_relatedness(self):
        assert relatedness_from_distance(0.0) == 1.0

    @given(distance=st.floats(min_value=0.0, max_value=1e9))
    def test_range_is_zero_one(self, distance):
        relatedness = relatedness_from_distance(distance)
        assert 0.0 < relatedness <= 1.0

    @given(
        near=st.floats(min_value=0.0, max_value=1e6),
        gap=st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_strictly_decreasing(self, near, gap):
        assert relatedness_from_distance(near) > relatedness_from_distance(
            near + gap
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            relatedness_from_distance(-0.1)

    @given(distance=st.floats(min_value=0.0, max_value=1e6))
    def test_equation_6_shape(self, distance):
        assert relatedness_from_distance(distance) == pytest.approx(
            1.0 / (1.0 + distance)
        )
        assert math.isfinite(relatedness_from_distance(distance))
