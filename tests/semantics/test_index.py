"""Unit tests for the inverted index (Figure 5, step 1)."""

from repro.semantics.documents import DocumentSet
from repro.semantics.index import InvertedIndex


def build(texts):
    return InvertedIndex.build(DocumentSet.from_texts(texts))


class TestBuild:
    def test_corpus_size(self):
        assert build(["a b", "c"]).corpus_size == 2

    def test_postings_and_frequencies(self):
        index = build(["energy energy parking", "parking lot"])
        assert index.frequency("energy", 0) == 2
        assert index.frequency("parking", 0) == 1
        assert index.frequency("parking", 1) == 1
        assert index.frequency("energy", 1) == 0

    def test_document_frequency(self):
        index = build(["energy parking", "parking", "filler"])
        assert index.document_frequency("parking") == 2
        assert index.document_frequency("energy") == 1
        assert index.document_frequency("unknown") == 0

    def test_max_frequency_per_document(self):
        index = build(["energy energy parking"])
        assert index.max_frequency[0] == 2

    def test_empty_document_gets_max_frequency_one(self):
        index = build(["", "energy"])
        assert index.max_frequency[0] == 1

    def test_documents_containing(self):
        index = build(["energy", "energy parking", "parking"])
        assert index.documents_containing("energy") == frozenset({0, 1})

    def test_vocabulary(self):
        index = build(["energy parking"])
        assert index.vocabulary() == frozenset({"energy", "parking"})

    def test_contains(self):
        index = build(["energy"])
        assert "energy" in index
        assert "parking" not in index

    def test_stop_words_not_indexed(self):
        index = build(["the energy of things"])
        assert "the" not in index
        assert "of" not in index

    def test_deterministic(self):
        texts = ["energy parking building", "computer laptop", "noise"]
        a, b = build(texts), build(texts)
        assert a.postings == b.postings
        assert a.max_frequency == b.max_frequency
