"""Unit tests for Equations 2–4."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.weighting import augmented_tf, idf, tf_idf


class TestAugmentedTf:
    def test_zero_frequency(self):
        assert augmented_tf(0, 5) == 0.0

    def test_max_frequency_term(self):
        assert augmented_tf(5, 5) == 1.0

    def test_half_frequency(self):
        assert augmented_tf(1, 2) == 0.75

    def test_bounds(self):
        for freq in range(1, 11):
            assert 0.5 < augmented_tf(freq, 10) <= 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            augmented_tf(-1, 5)
        with pytest.raises(ValueError):
            augmented_tf(1, 0)

    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_monotone_in_frequency(self, freq, max_freq):
        if freq < max_freq:
            assert augmented_tf(freq, max_freq) < augmented_tf(freq + 1, max_freq)


class TestIdf:
    def test_everywhere_term_scores_zero(self):
        assert idf(10, 10) == 0.0

    def test_rare_term_scores_high(self):
        assert idf(1000, 1) == math.log(1000)

    def test_rejects_zero_document_frequency(self):
        with pytest.raises(ValueError):
            idf(10, 0)

    def test_rejects_df_above_corpus(self):
        with pytest.raises(ValueError):
            idf(10, 11)

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError):
            idf(0, 0)

    @given(st.integers(1, 10000))
    def test_non_negative(self, size):
        for df in (1, size // 2 or 1, size):
            assert idf(size, df) >= 0.0


def test_tf_idf_is_product():
    assert math.isclose(
        tf_idf(2, 4, 100, 10), augmented_tf(2, 4) * idf(100, 10)
    )
