"""Property tests for the parametric space over randomized toy corpora."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.semantics.documents import DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace

WORDS = ["energy", "power", "grid", "parking", "street", "meter",
         "noise", "light", "city", "sensor"]

corpora = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=2, max_size=8).map(" ".join),
    min_size=2,
    max_size=8,
).map(DocumentSet.from_texts)

themes = st.sets(st.sampled_from(WORDS), max_size=3).map(tuple)
terms = st.sampled_from(WORDS)

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestProjectionInvariants:
    @COMMON
    @given(corpora, terms, themes)
    def test_support_within_basis(self, corpus, term, theme):
        space = ParametricVectorSpace(corpus)
        assert space.project(term, theme).support() <= space.theme_basis(theme)

    @COMMON
    @given(corpora, terms)
    def test_empty_theme_identity(self, corpus, term):
        space = ParametricVectorSpace(corpus)
        assert space.project(term, ()) == space.term_vector(term)

    @COMMON
    @given(corpora, terms, themes)
    def test_projection_support_subset_of_full_vector(self, corpus, term, theme):
        space = ParametricVectorSpace(corpus)
        assert (
            space.project(term, theme).support()
            <= space.term_vector(term).support()
        )

    @COMMON
    @given(corpora, themes, themes)
    def test_basis_monotone_in_tags(self, corpus, theme_a, theme_b):
        # Monotonicity holds for non-empty themes; the empty theme is
        # special-cased to span the whole corpus (no filtering).
        if not theme_a:
            return
        space = ParametricVectorSpace(corpus)
        union = tuple(set(theme_a) | set(theme_b))
        assert space.theme_basis(theme_a) <= space.theme_basis(union)


class TestRelatednessInvariants:
    @COMMON
    @given(corpora, terms, terms, themes, themes)
    def test_bounds(self, corpus, a, b, theme_a, theme_b):
        space = ParametricVectorSpace(corpus)
        value = space.thematic_relatedness(a, theme_a, b, theme_b)
        assert 0.0 <= value <= 1.0

    @COMMON
    @given(corpora, terms, terms, themes, themes)
    def test_symmetry(self, corpus, a, b, theme_a, theme_b):
        space = ParametricVectorSpace(corpus)
        assert space.thematic_relatedness(
            a, theme_a, b, theme_b
        ) == pytest.approx(
            space.thematic_relatedness(b, theme_b, a, theme_a)
        )

    @COMMON
    @given(corpora, terms, themes)
    def test_mask_ablation_also_within_basis(self, corpus, term, theme):
        space = ParametricVectorSpace(corpus, recompute_idf=False)
        assert space.project(term, theme).support() <= space.theme_basis(theme)
