"""Unit tests for the Parametric Vector Space Model and Algorithm 1."""

import math

import pytest

from repro.semantics.documents import DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace, theme_key
from repro.semantics.weighting import augmented_tf, idf

TOY = DocumentSet.from_texts(
    [
        "energy power consumption grid supply",          # 0 energy
        "energy meter usage power bill",                 # 1 energy
        "parking garage street car transport",           # 2 transport
        "parking transport spot city street",            # 3 transport
        "power struggle politics power government",      # 4 the other 'power'
        "generic filler words common phrases",           # 5 noise
    ]
)


@pytest.fixture(scope="module")
def pvsm():
    return ParametricVectorSpace(TOY)


class TestThemeKey:
    def test_order_and_case_insensitive(self):
        assert theme_key(["Energy", "power"]) == theme_key(("POWER", "energy"))

    def test_drops_empty_tags(self):
        assert theme_key(["", "energy"]) == ("energy",)

    def test_deduplicates(self):
        assert theme_key(["energy", "Energy "]) == ("energy",)

    def test_accepts_frozenset(self):
        assert theme_key(frozenset({"energy"})) == ("energy",)


class TestThemeBasis:
    def test_empty_theme_spans_corpus(self, pvsm):
        assert pvsm.theme_basis(()) == frozenset(range(len(TOY)))

    def test_basis_is_tag_support_union(self, pvsm):
        assert pvsm.theme_basis(["grid"]) == frozenset({0})
        assert pvsm.theme_basis(["grid", "garage"]) == frozenset({0, 2})

    def test_unknown_tags_span_nothing(self, pvsm):
        assert pvsm.theme_basis(["zebra"]) == frozenset()

    def test_basis_cached(self, pvsm):
        assert pvsm.theme_basis(["grid"]) is pvsm.theme_basis(("grid",))


class TestProjection:
    def test_support_within_basis(self, pvsm):
        theme = ["energy"]
        basis = pvsm.theme_basis(theme)
        projected = pvsm.project("power", theme)
        assert projected.support() <= basis

    def test_empty_theme_is_plain_vector(self, pvsm):
        assert pvsm.project("power", ()) == pvsm.term_vector("power")

    def test_disambiguation(self, pvsm):
        # 'power' under an energy theme loses its politics sense.
        projected = pvsm.project("power", ["energy"])
        assert 4 not in projected.support()
        full = pvsm.term_vector("power")
        assert 4 in full.support()

    def test_out_of_theme_term_projects_to_zero(self, pvsm):
        assert not pvsm.project("parking", ["grid"])

    def test_unknown_term_projects_to_zero(self, pvsm):
        assert not pvsm.project("zebra", ["energy"])

    def test_idf_recomputed_over_basis(self, pvsm):
        # Algorithm 1 line 9: idf = log(|B| / df_in_basis).
        theme = ["energy"]           # basis = docs 0 and 1
        projected = pvsm.project("grid", theme)   # grid only in doc 0
        expected = augmented_tf(1, 1) * idf(2, 1)
        assert math.isclose(projected[0], expected)

    def test_term_in_all_basis_docs_gets_zero_weight(self, pvsm):
        # 'energy' appears in both basis docs -> sub-corpus idf is 0.
        assert not pvsm.project("energy", ["energy"])

    def test_multiword_projection_additive(self, pvsm):
        combined = pvsm.project("power grid", ["energy"])
        expected = pvsm.project("power", ["energy"]).add(
            pvsm.project("grid", ["energy"])
        )
        assert combined == expected

    def test_projection_cached(self, pvsm):
        assert pvsm.project("power", ["energy"]) is pvsm.project(
            "power", ("energy",)
        )


class TestThematicRelatedness:
    def test_bounds_and_symmetry(self, pvsm):
        a = pvsm.thematic_relatedness("power", ["energy"], "meter", ["energy"])
        b = pvsm.thematic_relatedness("meter", ["energy"], "power", ["energy"])
        assert 0.0 <= a <= 1.0
        assert math.isclose(a, b)

    def test_zero_when_term_outside_theme(self, pvsm):
        assert (
            pvsm.thematic_relatedness("parking", ["grid"], "garage", ["grid"])
            == 0.0
        )

    def test_modes_differ_for_asymmetric_themes(self, pvsm):
        # Sub theme includes the politics document (where 'power' also
        # occurs); event theme does not. In common mode the politics
        # dimension is dropped from the subscription vector; in own mode
        # it stays and pays a norm penalty.
        sub_theme = ["energy", "politics", "transport"]
        common = pvsm.thematic_relatedness(
            "power", sub_theme, "meter", ["energy"], mode="common"
        )
        own = pvsm.thematic_relatedness(
            "power", sub_theme, "meter", ["energy"], mode="own"
        )
        assert common > own > 0.0

    def test_common_mode_restricts_to_intersection(self, pvsm):
        # Disjoint bases -> empty intersection -> relatedness 0.
        assert (
            pvsm.thematic_relatedness(
                "power", ["grid"], "parking", ["garage"], mode="common"
            )
            == 0.0
        )

    def test_unknown_mode_rejected(self, pvsm):
        with pytest.raises(ValueError):
            pvsm.thematic_relatedness("a", (), "b", (), mode="weird")

    def test_common_basis_symmetric_and_cached(self, pvsm):
        ab = pvsm.common_basis(["energy"], ["grid"])
        ba = pvsm.common_basis(["grid"], ["energy"])
        assert ab == ba == frozenset({0})


class TestCacheStats:
    def test_reports_all_caches(self, pvsm):
        stats = pvsm.cache_stats()
        for key in (
            "bases",
            "common_bases",
            "projections",
            "restricted",
            "term_vectors",
            "token_vectors",
        ):
            assert key in stats
            assert stats[key] >= 0


class TestOnDefaultCorpus:
    def test_projection_boosts_in_theme_synonyms(self, space):
        theme = {"energy", "energy policy", "electricity supply"}
        themed = space.thematic_relatedness(
            "energy consumption", theme, "electricity usage", theme
        )
        assert themed > 0.5

    def test_contrast_pair_deflated_in_theme(self, space):
        theme = {
            "energy", "pollution", "communications", "information technology",
            "social affairs", "regions",
        }
        full = space.relatedness("increased", "decreased")
        themed = space.thematic_relatedness("increased", theme, "decreased", theme)
        assert themed < full
