"""PersistentScoreStore and the offline warmer.

The precomputed tier's contract, property-checked over a toy corpus:

* the hashed/sorted array store answers exactly like the dict table it
  was built from, for hits and misses alike, regardless of argument
  order (keys are symmetric);
* a save/load round trip is bit-identical and digest-guarded;
* the warmer's planned cross-product deduplicates symmetric pairs and
  scores them exactly as the online kernel would, so a warmed engine
  never sees a score the unwarmed kernel path would not have produced.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.language import parse_event, parse_subscription
from repro.obs import MetricsRegistry
from repro.semantics.cache import (
    PersistentScoreStore,
    PrecomputedScoreTable,
    RelatednessCache,
)
from repro.semantics.documents import DocumentSet
from repro.semantics.kernel import KernelMeasure
from repro.semantics.measures import PrecomputedMeasure, ThematicMeasure
from repro.semantics.persistence import (
    corpus_digest,
    load_score_store,
    save_score_store,
)
from repro.semantics.pvsm import ParametricVectorSpace
from repro.semantics.warm import (
    build_score_store,
    plan_lookups,
    warm_score_table,
    workload_vocabulary,
)

TOY = DocumentSet.from_texts(
    [
        "energy power grid consumption meter",
        "parking street car transport spot",
        "weather storm rain wind forecast",
        "energy meter building office monitor",
        "car engine power fuel energy",
        "office building room computer energy",
        "storm damage power outage grid",
        "computer laptop device office desk",
    ]
)

DIGEST = corpus_digest(TOY)

terms = st.sampled_from(
    ("energy", "power", "car", "storm", "office", "laptop", "grid")
)
themes = st.sets(
    st.sampled_from(("energy", "street", "office", "city")), max_size=2
).map(tuple)


@pytest.fixture(scope="module")
def toy_space():
    return ParametricVectorSpace(TOY)


@pytest.fixture(scope="module")
def reference(toy_space):
    """A dict table plus the store built from it, over real scores."""
    measure = ThematicMeasure(toy_space)
    cache = RelatednessCache()
    table = PrecomputedScoreTable()
    tags = ("energy", "office")
    for term_s in ("energy", "power", "car", "storm"):
        for term_e in ("office", "laptop", "grid", "rain"):
            table.scores[cache.key(term_s, tags, term_e, ())] = measure.score(
                term_s, tags, term_e, ()
            )
    store = PersistentScoreStore.from_table(table, corpus_digest=DIGEST)
    return table, store


class TestStoreLookup:
    def test_every_table_entry_reads_back_bitwise(self, reference):
        table, store = reference
        assert len(store) == len(table)
        tags = ("energy", "office")
        for term_s in ("energy", "power", "car", "storm"):
            for term_e in ("office", "laptop", "grid", "rain"):
                assert store.get(term_s, tags, term_e, ()) == table.get(
                    term_s, tags, term_e, ()
                )

    def test_lookup_is_symmetric(self, reference):
        _, store = reference
        tags = ("energy", "office")
        assert store.get("power", tags, "grid", ()) == store.get(
            "grid", (), "power", tags
        )

    def test_miss_returns_none(self, reference):
        _, store = reference
        assert store.get("zzz", (), "qqq", ()) is None

    def test_theme_sets_distinguish_entries(self, reference):
        _, store = reference
        # Same terms, different themes: not in the table -> miss.
        assert store.get("power", (), "grid", ()) is None

    def test_counters_track_hits_and_misses(self, reference):
        table, _ = reference
        registry = MetricsRegistry()
        store = PersistentScoreStore.from_table(
            table, corpus_digest=DIGEST, registry=registry
        )
        tags = ("energy", "office")
        store.get("power", tags, "grid", ())
        store.get("zzz", (), "qqq", ())
        counters = registry.snapshot()["counters"]
        assert counters["score_store.hits"] == 1
        assert counters["score_store.misses"] == 1

    def test_get_batch_matches_per_key_gets(self, reference):
        _, store = reference
        tags = ("energy", "office")
        lookups = [
            ("power", tags, "grid", ()),  # hit
            ("zzz", (), "qqq", ()),  # miss
            ("grid", (), "power", tags),  # symmetric repeat -> memo path
            ("storm", tags, "rain", ()),  # hit
        ]
        registry = MetricsRegistry()
        fresh = PersistentScoreStore(
            **store.arrays(), corpus_digest=DIGEST, registry=registry
        )
        batch = fresh.get_batch(lookups)
        assert batch == [store.get(*lookup) for lookup in lookups]
        counters = registry.snapshot()["counters"]
        assert counters["score_store.hits"] == 3
        assert counters["score_store.misses"] == 1

    @settings(deadline=None)
    @given(
        entries=st.dictionaries(
            st.tuples(terms, themes, terms, themes),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=24,
        )
    )
    def test_store_agrees_with_dict_table_on_any_contents(self, entries):
        cache = RelatednessCache()
        table = PrecomputedScoreTable()
        for (term_s, theme_s, term_e, theme_e), score in entries.items():
            table.scores[cache.key(term_s, theme_s, term_e, theme_e)] = score
        store = PersistentScoreStore.from_table(table, corpus_digest=DIGEST)
        for term_s, theme_s, term_e, theme_e in entries:
            assert store.get(term_s, theme_s, term_e, theme_e) == table.get(
                term_s, theme_s, term_e, theme_e
            )


class TestPersistence:
    def test_round_trip_is_bit_identical(self, reference, tmp_path):
        table, store = reference
        path = tmp_path / "scores.bin"
        save_score_store(store, path)
        loaded = load_score_store(path, expected_digest=DIGEST)
        assert len(loaded) == len(store)
        tags = ("energy", "office")
        for term_s in ("energy", "power", "car", "storm"):
            for term_e in ("office", "laptop", "grid", "rain"):
                assert loaded.get(term_s, tags, term_e, ()) == store.get(
                    term_s, tags, term_e, ()
                )

    def test_save_creates_parent_directories(self, reference, tmp_path):
        _, store = reference
        path = tmp_path / "artifacts" / "warm" / "scores.bin"
        save_score_store(store, path)
        loaded = load_score_store(path, expected_digest=DIGEST)
        assert len(loaded) == len(store)

    def test_wrong_digest_is_rejected(self, reference, tmp_path):
        _, store = reference
        path = tmp_path / "scores.bin"
        save_score_store(store, path)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_score_store(path, expected_digest="0" * 64)

    def test_wrong_magic_is_rejected(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"NOTASTORE" + b"\x00" * 128)
        with pytest.raises(ValueError, match="not a repro score-store"):
            load_score_store(path)

    def test_store_save_load_methods_round_trip(self, reference, tmp_path):
        _, store = reference
        path = tmp_path / "scores.bin"
        store.save(path)
        loaded = PersistentScoreStore.load(path, expected_digest=DIGEST)
        tags = ("energy", "office")
        assert loaded.get("power", tags, "grid", ()) == store.get(
            "power", tags, "grid", ()
        )

    def test_warm_materializes_and_still_answers(self, reference, tmp_path):
        _, store = reference
        path = tmp_path / "scores.bin"
        save_score_store(store, path)
        loaded = load_score_store(path, expected_digest=DIGEST)
        warmed = loaded.warm()
        assert warmed is loaded
        tags = ("energy", "office")
        assert warmed.get("power", tags, "grid", ()) == store.get(
            "power", tags, "grid", ()
        )


class TestPrecomputedMeasureTiering:
    def test_store_is_consulted_before_the_fallback(self, reference):
        _, store = reference

        class Exploding:
            vectorized = False

            def score(self, *args):
                raise AssertionError("fallback consulted on a store hit")

        measure = PrecomputedMeasure(store, fallback=Exploding())
        tags = ("energy", "office")
        assert measure.score("power", tags, "grid", ()) == store.get(
            "power", tags, "grid", ()
        )

    def test_batch_routes_misses_to_fallback_batch(self, reference, toy_space):
        _, store = reference
        measure = PrecomputedMeasure(
            store, fallback=ThematicMeasure(toy_space)
        )
        tags = ("energy", "office")
        lookups = [
            ("power", tags, "grid", ()),  # store hit
            ("laptop", ("office",), "desk", ("office",)),  # miss -> fallback
            ("energy", (), "energy", ()),  # identical -> 1.0
        ]
        batch = measure.score_batch(lookups)
        assert batch == [measure.score(*lookup) for lookup in lookups]
        assert batch[2] == 1.0


class TestWarmer:
    def test_workload_vocabulary_collects_both_sides(self):
        sub = parse_subscription("({office}, {device~= laptop~})")
        event = parse_event("({office}, {device: computer, floor: 3})")
        sub_terms, event_terms = workload_vocabulary([sub], [event])
        assert sub_terms == ("device", "laptop")
        assert event_terms == ("computer", "device", "floor")

    def test_plan_lookups_skips_identical_and_symmetric_pairs(self):
        lookups = plan_lookups(
            ("energy", "power"),
            ("power", "energy"),
            [((), ())],
        )
        # 4 raw pairs: 2 identical skipped, (energy, power) and
        # (power, energy) collapse to one.
        assert len(lookups) == 1

    def test_plan_lookups_distinguishes_theme_pairs(self):
        lookups = plan_lookups(
            ("energy",), ("power",), [((), ()), (("office",), ())]
        )
        assert len(lookups) == 2

    def test_warm_table_matches_online_kernel_bitwise(self, toy_space):
        lookups = plan_lookups(
            ("energy", "power", "car"),
            ("storm", "office", "grid"),
            [(("energy",), ("energy", "office"))],
        )
        table = warm_score_table(toy_space, lookups)
        online = KernelMeasure(toy_space.kernel())
        for lookup in lookups:
            term_s, theme_s, term_e, theme_e = lookup
            cache = RelatednessCache()
            assert table.scores[
                cache.key(*lookup)
            ] == online.score(term_s, theme_s, term_e, theme_e)

    def test_build_score_store_end_to_end(self, toy_space):
        sub = parse_subscription("({office}, {device~= laptop~})")
        event = parse_event("({office}, {device: computer})")
        store = build_score_store(
            toy_space,
            [sub.with_theme(("office",))],
            [event.with_theme(("office",))],
            [(("office",), ("office",))],
        )
        assert store.corpus_digest == corpus_digest(toy_space.documents)
        online = KernelMeasure(toy_space.kernel())
        got = store.get("laptop", ("office",), "computer", ("office",))
        assert got == online.score(
            "laptop", ("office",), "computer", ("office",)
        )
