"""Unit tests for the non-thematic distributional space (Section 4.1)."""

import math

import pytest

from repro.semantics.documents import DocumentSet
from repro.semantics.space import DistributionalVectorSpace, relatedness_from_distance
from repro.semantics.vectors import ZERO_VECTOR

TOY = DocumentSet.from_texts(
    [
        "energy power energy consumption grid",
        "energy usage power meter",
        "parking garage car street",
        "parking spot street city",
        "filler words everywhere common",
    ]
)


@pytest.fixture(scope="module")
def toy_space():
    return DistributionalVectorSpace(TOY)


class TestRelatednessFromDistance:
    def test_zero_distance_is_one(self):
        assert relatedness_from_distance(0.0) == 1.0

    def test_monotone_decreasing(self):
        assert relatedness_from_distance(0.5) > relatedness_from_distance(1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            relatedness_from_distance(-0.1)


class TestTermVectors:
    def test_unknown_term_is_zero_vector(self, toy_space):
        assert toy_space.term_vector("zebra") is ZERO_VECTOR or not toy_space.term_vector("zebra")

    def test_known_term_support_matches_postings(self, toy_space):
        assert toy_space.token_vector("parking").support() == frozenset({2, 3})

    def test_multiword_composition_is_additive(self, toy_space):
        combined = toy_space.term_vector("energy consumption")
        expected = toy_space.token_vector("energy").add(
            toy_space.token_vector("consumption")
        )
        assert combined == expected

    def test_vectors_cached(self, toy_space):
        assert toy_space.term_vector("energy") is toy_space.term_vector("energy")

    def test_everywhere_token_has_zero_idf(self):
        space = DistributionalVectorSpace(
            DocumentSet.from_texts(["common energy", "common parking"])
        )
        assert not space.token_vector("common")


class TestRelatedness:
    def test_bounds(self, toy_space):
        value = toy_space.relatedness("energy", "parking")
        assert 0.0 <= value <= 1.0

    def test_symmetry(self, toy_space):
        assert math.isclose(
            toy_space.relatedness("energy", "parking"),
            toy_space.relatedness("parking", "energy"),
        )

    def test_identical_terms_score_one(self, toy_space):
        assert math.isclose(toy_space.relatedness("energy", "energy"), 1.0)

    def test_related_beats_unrelated(self, toy_space):
        related = toy_space.relatedness("parking", "garage")
        unrelated = toy_space.relatedness("parking", "meter")
        assert related > unrelated

    def test_unknown_term_scores_zero(self, toy_space):
        assert toy_space.relatedness("zebra", "energy") == 0.0
        assert toy_space.relatedness("zebra", "quagga") == 0.0

    def test_distance_infinite_for_zero_vectors(self, toy_space):
        assert toy_space.distance(ZERO_VECTOR, toy_space.term_vector("energy")) == float("inf")


class TestMetricOptions:
    def test_cosine_metric(self):
        space = DistributionalVectorSpace(TOY, metric="cosine")
        assert 0.0 <= space.relatedness("parking", "garage") <= 1.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            DistributionalVectorSpace(TOY, metric="manhattan")

    def test_unnormalized_variant(self):
        space = DistributionalVectorSpace(TOY, normalize=False)
        assert 0.0 < space.relatedness("parking", "garage") < 1.0

    def test_default_corpus_relatedness_sane(self, space):
        # The bundled corpus must make synonyms beat cross-domain pairs.
        synonym = space.relatedness("energy consumption", "electricity usage")
        unrelated = space.relatedness("energy consumption", "rainfall")
        assert synonym > unrelated
