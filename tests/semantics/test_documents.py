"""Unit tests for the document abstractions."""

import pytest

from repro.semantics.documents import Document, DocumentSet


class TestDocument:
    def test_tokens(self):
        doc = Document(name="d", text="Energy use in Buildings")
        assert doc.tokens() == ["energy", "use", "building"]

    def test_immutable(self):
        doc = Document(name="d", text="x")
        with pytest.raises(AttributeError):
            doc.text = "y"  # type: ignore[misc]


class TestDocumentSet:
    def test_from_texts_names(self):
        ds = DocumentSet.from_texts(["a b", "c d"])
        assert ds.names() == ("doc-0", "doc-1")
        assert len(ds) == 2

    def test_positional_access_and_ids(self):
        ds = DocumentSet.from_texts(["a b", "c d"])
        assert ds[1].text == "c d"
        assert ds.doc_id("doc-1") == 1

    def test_iteration_order(self):
        ds = DocumentSet.from_texts(["one", "two", "three"])
        assert [d.text for d in ds] == ["one", "two", "three"]

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            DocumentSet.from_documents(
                [Document("same", "a"), Document("same", "b")]
            )

    def test_unknown_name_raises(self):
        ds = DocumentSet.from_texts(["x"])
        with pytest.raises(KeyError):
            ds.doc_id("nope")
