"""Unit tests for the relatedness caches and precomputed tables."""

from repro.semantics.cache import (
    PrecomputedScoreTable,
    RelatednessCache,
    precompute_scores,
)


class _CountingMeasure:
    """Fake measure recording how many times it was asked."""

    def __init__(self):
        self.calls = 0

    def score(self, term_s, theme_s, term_e, theme_e):
        self.calls += 1
        return 0.5


class TestRelatednessCache:
    def test_put_get_roundtrip(self):
        cache = RelatednessCache()
        key = cache.key("a1", (), "b1", ())
        cache.put(key, 0.7)
        assert cache.get(key) == 0.7

    def test_symmetric_keys(self):
        cache = RelatednessCache()
        assert cache.key("a1", ("t",), "b1", ()) == cache.key("b1", (), "a1", ("t",))

    def test_normalized_keys(self):
        cache = RelatednessCache()
        assert cache.key("Energy ", (), "b1", ()) == cache.key("energy", (), "b1", ())

    def test_counters(self):
        cache = RelatednessCache()
        key = cache.key("a1", (), "b1", ())
        assert cache.get(key) is None
        cache.put(key, 0.1)
        cache.get(key)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_clear(self):
        cache = RelatednessCache()
        cache.put(cache.key("a1", (), "b1", ()), 0.1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0


class TestPrecomputeScores:
    def test_covers_cross_product(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1", "b1"], ["c1", "d1"])
        assert len(table) == 4
        assert measure.calls == 4

    def test_no_duplicate_computation_for_shared_terms(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1", "b1"], ["a1", "b1"])
        # Symmetric keys collapse (a,b) and (b,a); (a,a) and (b,b) included.
        assert len(table) == 3

    def test_lookup_respects_themes(self):
        measure = _CountingMeasure()
        table = precompute_scores(
            measure, ["a1"], ["b1"], theme_s=("x",), theme_e=("y",)
        )
        assert table.get("a1", ("x",), "b1", ("y",)) == 0.5
        assert table.get("a1", (), "b1", ()) is None

    def test_symmetric_lookup(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1"], ["b1"])
        assert table.get("b1", (), "a1", ()) == 0.5
