"""Unit tests for the relatedness caches and precomputed tables."""

from repro.semantics.cache import (
    RelatednessCache,
    precompute_scores,
)


class _CountingMeasure:
    """Fake measure recording how many times it was asked."""

    def __init__(self):
        self.calls = 0

    def score(self, term_s, theme_s, term_e, theme_e):
        self.calls += 1
        return 0.5


class TestRelatednessCache:
    def test_put_get_roundtrip(self):
        cache = RelatednessCache()
        key = cache.key("a1", (), "b1", ())
        cache.put(key, 0.7)
        assert cache.get(key) == 0.7

    def test_symmetric_keys(self):
        cache = RelatednessCache()
        assert cache.key("a1", ("t",), "b1", ()) == cache.key("b1", (), "a1", ("t",))

    def test_normalized_keys(self):
        cache = RelatednessCache()
        assert cache.key("Energy ", (), "b1", ()) == cache.key("energy", (), "b1", ())

    def test_counters(self):
        cache = RelatednessCache()
        key = cache.key("a1", (), "b1", ())
        assert cache.get(key) is None
        cache.put(key, 0.1)
        cache.get(key)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_clear(self):
        cache = RelatednessCache()
        cache.put(cache.key("a1", (), "b1", ()), 0.1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0

    def test_hit_rate(self):
        cache = RelatednessCache()
        key = cache.key("a1", (), "b1", ())
        assert cache.hit_rate == 0.0
        cache.get(key)  # miss
        cache.put(key, 0.1)
        cache.get(key)  # hit
        cache.get(key)  # hit
        assert cache.hit_rate == 2 / 3

    def test_unbounded_by_default(self):
        cache = RelatednessCache()
        for i in range(1000):
            cache.put(cache.key(f"t{i}", (), "b1", ()), 0.1)
        assert len(cache) == 1000


class TestBoundedCache:
    def _key(self, cache, i):
        return cache.key(f"t{i}", (), "z1", ())

    def test_max_entries_evicts_oldest(self):
        cache = RelatednessCache(max_entries=2)
        cache.put(self._key(cache, 0), 0.0)
        cache.put(self._key(cache, 1), 0.1)
        cache.put(self._key(cache, 2), 0.2)
        assert len(cache) == 2
        assert cache.get(self._key(cache, 0)) is None
        assert cache.get(self._key(cache, 2)) == 0.2

    def test_get_refreshes_recency(self):
        cache = RelatednessCache(max_entries=2)
        cache.put(self._key(cache, 0), 0.0)
        cache.put(self._key(cache, 1), 0.1)
        cache.get(self._key(cache, 0))  # now most-recent
        cache.put(self._key(cache, 2), 0.2)
        assert cache.get(self._key(cache, 0)) == 0.0
        assert cache.get(self._key(cache, 1)) is None

    def test_put_existing_key_does_not_evict(self):
        cache = RelatednessCache(max_entries=2)
        cache.put(self._key(cache, 0), 0.0)
        cache.put(self._key(cache, 1), 0.1)
        cache.put(self._key(cache, 0), 0.5)  # update in place
        assert len(cache) == 2
        assert cache.get(self._key(cache, 0)) == 0.5
        assert cache.get(self._key(cache, 1)) == 0.1

    def test_invalid_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            RelatednessCache(max_entries=0)


class TestPrecomputeScores:
    def test_covers_cross_product(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1", "b1"], ["c1", "d1"])
        assert len(table) == 4
        assert measure.calls == 4

    def test_no_duplicate_computation_for_shared_terms(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1", "b1"], ["a1", "b1"])
        # Symmetric keys collapse (a,b) and (b,a); (a,a) and (b,b) included.
        assert len(table) == 3

    def test_lookup_respects_themes(self):
        measure = _CountingMeasure()
        table = precompute_scores(
            measure, ["a1"], ["b1"], theme_s=("x",), theme_e=("y",)
        )
        assert table.get("a1", ("x",), "b1", ("y",)) == 0.5
        assert table.get("a1", (), "b1", ()) is None

    def test_symmetric_lookup(self):
        measure = _CountingMeasure()
        table = precompute_scores(measure, ["a1"], ["b1"])
        assert table.get("b1", (), "a1", ()) == 0.5
