"""Unit tests for the tokenizer, stemmer, and term normalization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.tokenize import (
    STOP_WORDS,
    iter_terms,
    normalize_term,
    stem,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits_punctuation(self):
        assert tokenize("Increased Energy-Consumption event!") == [
            "increased",
            "energy",
            "consumption",
            "event",
        ]

    def test_drops_stop_words(self):
        assert tokenize("the energy of the building") == ["energy", "building"]

    def test_drops_single_characters(self):
        assert tokenize("a b c energy") == ["energy"]

    def test_keeps_numbers(self):
        assert tokenize("room 112") == ["room", "112"]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_custom_stop_words(self):
        assert tokenize("energy use", stop_words=frozenset({"energy"})) == ["use"]

    def test_plural_conflation(self):
        assert tokenize("computers") == tokenize("computer")

    @given(st.text(max_size=40))
    def test_never_returns_stop_words_or_short_tokens(self, text):
        for token in tokenize(text):
            assert token not in STOP_WORDS
            assert len(token) > 1


class TestStem:
    def test_plural_s(self):
        assert stem("computers") == "computer"

    def test_ies(self):
        assert stem("batteries") == "battery"

    def test_protects_ss_us_is(self):
        assert stem("glass") == "glass"
        assert stem("bus") == "bus"
        assert stem("analysis") == "analysis"

    def test_protects_short_words(self):
        assert stem("gas") == "gas"

    def test_idempotent_on_common_vocabulary(self):
        for word in ("computer", "energy", "building", "appliance", "city"):
            assert stem(stem(word)) == stem(word)


class TestNormalizeTerm:
    def test_case_and_punctuation(self):
        assert normalize_term("Energy_Consumption ") == "energy consumption"

    def test_idempotent(self):
        assert normalize_term(normalize_term("A  B-c")) == normalize_term("A  B-c")

    def test_empty(self):
        assert normalize_term("") == ""

    def test_does_not_stem(self):
        # Exact-equality semantics stay string-exact per the paper.
        assert normalize_term("computers") == "computers"

    @given(st.text(max_size=40))
    def test_output_is_single_spaced(self, text):
        normalized = normalize_term(text)
        assert "  " not in normalized
        assert normalized == normalized.strip()


def test_iter_terms_flattens():
    assert list(iter_terms(["energy use", "parking lot"])) == [
        "energy",
        "use",
        "parking",
        "lot",
    ]
