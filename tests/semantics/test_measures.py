"""Unit tests for the semantic measures of Section 4.3 / Table 1."""

import math

import pytest

from repro.semantics.cache import PrecomputedScoreTable, precompute_scores
from repro.semantics.documents import DocumentSet
from repro.semantics.measures import (
    CachedMeasure,
    ExactMeasure,
    NonThematicMeasure,
    PrecomputedMeasure,
    ThematicMeasure,
)
from repro.semantics.pvsm import ParametricVectorSpace

TOY = DocumentSet.from_texts(
    [
        "energy power consumption grid",
        "energy usage power meter",
        "parking garage street car",
    ]
)


@pytest.fixture(scope="module")
def toy_space():
    return ParametricVectorSpace(TOY)


class TestExactMeasure:
    def test_identical(self):
        assert ExactMeasure().score("Energy ", (), "energy", ()) == 1.0

    def test_different(self):
        assert ExactMeasure().score("energy", (), "power", ()) == 0.0

    def test_ignores_themes(self):
        assert ExactMeasure().score("a1", ("x",), "a1", ("y",)) == 1.0


class TestNonThematicMeasure:
    def test_identical_short_circuits(self, toy_space):
        assert NonThematicMeasure(toy_space).score("zebra", (), "zebra", ()) == 1.0

    def test_ignores_themes(self, toy_space):
        measure = NonThematicMeasure(toy_space)
        assert measure.score("power", ("parking",), "meter", ("street",)) == (
            measure.score("power", (), "meter", ())
        )

    def test_range(self, toy_space):
        value = NonThematicMeasure(toy_space).score("power", (), "garage", ())
        assert 0.0 <= value <= 1.0


class TestThematicMeasure:
    def test_uses_themes(self, toy_space):
        measure = ThematicMeasure(toy_space)
        themed = measure.score("power", ("grid",), "meter", ("grid",))
        assert themed == 0.0  # meter absent from the grid doc
        full = measure.score("power", (), "meter", ())
        assert full > 0.0

    def test_identical_short_circuits(self, toy_space):
        assert ThematicMeasure(toy_space).score("power", ("grid",), "power", ()) == 1.0

    def test_mode_forwarded(self, toy_space):
        own = ThematicMeasure(toy_space, mode="own")
        common = ThematicMeasure(toy_space, mode="common")
        args = ("power", ("energy", "parking"), "meter", ("meter",))
        assert own.score(*args) != common.score(*args) or common.score(*args) == 0.0


class TestCachedMeasure:
    def test_caches_and_counts(self, toy_space):
        cached = CachedMeasure(NonThematicMeasure(toy_space))
        first = cached.score("power", (), "meter", ())
        second = cached.score("power", (), "meter", ())
        assert first == second
        assert cached.cache.hits == 1
        assert cached.cache.misses == 1

    def test_symmetric_key(self, toy_space):
        cached = CachedMeasure(NonThematicMeasure(toy_space))
        cached.score("power", (), "meter", ())
        assert cached.score("meter", (), "power", ()) == cached.score(
            "power", (), "meter", ()
        )
        assert len(cached.cache) == 1

    def test_theme_in_key(self, toy_space):
        cached = CachedMeasure(ThematicMeasure(toy_space))
        a = cached.score("power", ("grid",), "consumption", ("grid",))
        b = cached.score("power", (), "consumption", ())
        assert len(cached.cache) == 2
        assert a != b


class TestPrecomputedMeasure:
    def test_serves_from_table(self, toy_space):
        inner = NonThematicMeasure(toy_space)
        table = precompute_scores(inner, ["power"], ["meter", "garage"])
        measure = PrecomputedMeasure(table)
        assert math.isclose(
            measure.score("power", (), "meter", ()),
            inner.score("power", (), "meter", ()),
        )

    def test_identical_always_one(self):
        measure = PrecomputedMeasure(PrecomputedScoreTable())
        assert measure.score("x1", (), "x1", ()) == 1.0

    def test_missing_pair_defaults_to_zero(self):
        measure = PrecomputedMeasure(PrecomputedScoreTable())
        assert measure.score("a1", (), "b1", ()) == 0.0

    def test_missing_pair_uses_fallback(self, toy_space):
        inner = NonThematicMeasure(toy_space)
        measure = PrecomputedMeasure(PrecomputedScoreTable(), fallback=inner)
        assert measure.score("power", (), "meter", ()) == inner.score(
            "power", (), "meter", ()
        )
