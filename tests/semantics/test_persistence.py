"""Tests for corpus snapshots (save/load/verify)."""

import json

import pytest

from repro.semantics.documents import DocumentSet
from repro.semantics.persistence import (
    FORMAT_VERSION,
    corpus_digest,
    load_corpus,
    load_space,
    save_corpus,
)

TOY = DocumentSet.from_texts(["energy power grid", "parking street car"])


class TestDigest:
    def test_deterministic(self):
        assert corpus_digest(TOY) == corpus_digest(TOY)

    def test_sensitive_to_content(self):
        other = DocumentSet.from_texts(["energy power grid", "parking street"])
        assert corpus_digest(TOY) != corpus_digest(other)

    def test_sensitive_to_order(self):
        reordered = DocumentSet.from_documents(
            [TOY[1], TOY[0]]
        )
        assert corpus_digest(TOY) != corpus_digest(reordered)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(TOY, path)
        loaded = load_corpus(path)
        assert loaded.names() == TOY.names()
        assert [d.text for d in loaded] == [d.text for d in TOY]

    def test_load_space_builds_equivalent_space(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(TOY, path)
        space = load_space(path)
        assert space.relatedness("parking", "street") > 0

    def test_default_corpus_roundtrip(self, tmp_path, corpus):
        path = tmp_path / "default.json"
        save_corpus(corpus, path)
        assert corpus_digest(load_corpus(path)) == corpus_digest(corpus)


class TestValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro corpus"):
            load_corpus(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        save_corpus(TOY, path)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_corpus(path)

    def test_rejects_tampered_content(self, tmp_path):
        path = tmp_path / "tampered.json"
        save_corpus(TOY, path)
        payload = json.loads(path.read_text())
        payload["documents"][0]["text"] = "tampered text"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="digest"):
            load_corpus(path)


class TestColumnarSnapshot:
    """Binary zero-copy layout for the process-shard workers."""

    @staticmethod
    def _write(tmp_path):
        import numpy as np

        from repro.semantics.columnar import ColumnarIndex
        from repro.semantics.index import InvertedIndex
        from repro.semantics.persistence import save_columnar

        columnar = ColumnarIndex.build(InvertedIndex.build(TOY))
        path = tmp_path / "space.repro-col"
        save_columnar(columnar, path, digest=corpus_digest(TOY))
        return columnar, path, np

    def test_round_trip_is_bit_identical_and_memory_mapped(self, tmp_path):
        from repro.semantics.persistence import load_columnar

        columnar, path, np = self._write(tmp_path)
        loaded, digest = load_columnar(path)
        assert digest == corpus_digest(TOY)
        assert loaded.vocabulary == columnar.vocabulary
        assert loaded.corpus_size == columnar.corpus_size
        for name, array in columnar.arrays().items():
            view = loaded.arrays()[name]
            assert isinstance(view, np.memmap)
            assert view.dtype == array.dtype
            assert np.array_equal(view, array)

    def test_kernel_over_snapshot_scores_identically(self, tmp_path):
        from repro.semantics.kernel import KernelMeasure, RelatednessKernel
        from repro.semantics.persistence import load_columnar

        columnar, path, _ = self._write(tmp_path)
        loaded, _ = load_columnar(path)
        lookups = [
            ("energy", ("energy",), "power", ("energy", "street")),
            ("car", (), "street", ()),
        ]
        in_memory = KernelMeasure(RelatednessKernel(columnar))
        mapped = KernelMeasure(RelatednessKernel(loaded))
        assert in_memory.score_batch(lookups) == mapped.score_batch(lookups)

    def test_rejects_digest_mismatch(self, tmp_path):
        from repro.semantics.persistence import load_columnar

        _, path, _ = self._write(tmp_path)
        with pytest.raises(ValueError, match="digest mismatch"):
            load_columnar(path, expected_digest="0" * 64)

    def test_rejects_bad_magic(self, tmp_path):
        from repro.semantics.persistence import load_columnar

        _, path, _ = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTACOLF"
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="not a repro columnar"):
            load_columnar(path)

    def test_rejects_future_layout_version(self, tmp_path):
        import struct

        from repro.semantics.persistence import (
            COLUMNAR_FORMAT_VERSION,
            load_columnar,
        )

        _, path, _ = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[8:10] = struct.pack("=H", COLUMNAR_FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="layout version"):
            load_columnar(path)

    def test_rejects_opposite_endianness(self, tmp_path):
        from repro.semantics.persistence import load_columnar

        _, path, _ = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[10:12] = bytes(reversed(raw[10:12]))  # byte-swapped probe
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="endianness"):
            load_columnar(path)

    def test_save_requires_a_real_digest(self, tmp_path):
        from repro.semantics.columnar import ColumnarIndex
        from repro.semantics.index import InvertedIndex
        from repro.semantics.persistence import save_columnar

        columnar = ColumnarIndex.build(InvertedIndex.build(TOY))
        with pytest.raises(ValueError, match="64-char"):
            save_columnar(columnar, tmp_path / "x.col", digest="abc")
