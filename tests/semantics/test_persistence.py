"""Tests for corpus snapshots (save/load/verify)."""

import json

import pytest

from repro.semantics.documents import DocumentSet
from repro.semantics.persistence import (
    FORMAT_VERSION,
    corpus_digest,
    load_corpus,
    load_space,
    save_corpus,
)

TOY = DocumentSet.from_texts(["energy power grid", "parking street car"])


class TestDigest:
    def test_deterministic(self):
        assert corpus_digest(TOY) == corpus_digest(TOY)

    def test_sensitive_to_content(self):
        other = DocumentSet.from_texts(["energy power grid", "parking street"])
        assert corpus_digest(TOY) != corpus_digest(other)

    def test_sensitive_to_order(self):
        reordered = DocumentSet.from_documents(
            [TOY[1], TOY[0]]
        )
        assert corpus_digest(TOY) != corpus_digest(reordered)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(TOY, path)
        loaded = load_corpus(path)
        assert loaded.names() == TOY.names()
        assert [d.text for d in loaded] == [d.text for d in TOY]

    def test_load_space_builds_equivalent_space(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(TOY, path)
        space = load_space(path)
        assert space.relatedness("parking", "street") > 0

    def test_default_corpus_roundtrip(self, tmp_path, corpus):
        path = tmp_path / "default.json"
        save_corpus(corpus, path)
        assert corpus_digest(load_corpus(path)) == corpus_digest(corpus)


class TestValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro corpus"):
            load_corpus(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        save_corpus(TOY, path)
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_corpus(path)

    def test_rejects_tampered_content(self, tmp_path):
        path = tmp_path / "tampered.json"
        save_corpus(TOY, path)
        payload = json.loads(path.read_text())
        payload["documents"][0]["text"] = "tampered text"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="digest"):
            load_corpus(path)
