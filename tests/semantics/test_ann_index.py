"""ApproxNeighborIndex: loss-freeness at recall 1.0, soundness below it.

The tentpole guarantee of the ANN anchor mode is stated here as
hypothesis properties over the real default-corpus vocabulary:

* ``recall_target=1.0`` is *bit-identical* to the exact
  :class:`~repro.core.prefilter.TokenNeighborhoods` scan — not close,
  identical — for any term;
* at any lower recall target the index is *sound*: every returned
  neighbor is a true neighbor (candidates are exact-rechecked), so the
  approximation can only miss, never invent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefilter import TokenNeighborhoods
from repro.obs import MetricsRegistry
from repro.semantics.index import (
    DEFAULT_NEIGHBOR_THRESHOLD,
    ApproxNeighborIndex,
)

#: Terms mixing vocabulary tokens, multi-token phrases, and unknowns.
terms = st.sampled_from(
    [
        "laptop",
        "computer",
        "energy",
        "temperature sensor",
        "increased energy consumption",
        "room 112",
        "zebra",
        "air quality",
        "heating",
        "traffic",
    ]
)


@pytest.fixture(scope="module")
def exact(space):
    return TokenNeighborhoods(space)


@pytest.fixture(scope="module")
def loss_free(space):
    return ApproxNeighborIndex(space, recall_target=1.0)


@pytest.fixture(scope="module")
def approximate(space):
    return ApproxNeighborIndex(space, recall_target=0.5)


@pytest.fixture(scope="module")
def low_recall(space):
    return ApproxNeighborIndex(space, recall_target=0.25)


@pytest.fixture(scope="module")
def high_recall(space):
    return ApproxNeighborIndex(space, recall_target=0.75)


class TestLossFreeMode:
    @settings(deadline=None)
    @given(term=terms)
    def test_recall_one_is_bit_identical_to_exact_scan(
        self, exact, loss_free, term
    ):
        assert loss_free.neighbors(term) == exact.neighbors(term)

    def test_recall_one_never_builds_signatures(self, space):
        index = ApproxNeighborIndex(space, recall_target=1.0)
        index.neighbors("laptop")
        assert index._buckets is None

    def test_unknown_term_is_self_only(self, loss_free):
        assert loss_free.neighbors("qqqzebra") == frozenset({"qqqzebra"})


class TestApproximateMode:
    @settings(deadline=None)
    @given(term=terms)
    def test_approximate_neighbors_are_sound(
        self, exact, approximate, term
    ):
        """Never invents: every approximate neighbor is a true neighbor."""
        assert approximate.neighbors(term) <= exact.neighbors(term)

    @settings(deadline=None)
    @given(term=terms)
    def test_more_probed_bands_never_lose_neighbors(
        self, low_recall, high_recall, term
    ):
        """Probed bands are a prefix, so recall is monotone in the knob."""
        assert low_recall.neighbors(term) <= high_recall.neighbors(term)

    def test_same_seed_same_space_agree_bitwise(self, space):
        a = ApproxNeighborIndex(space, recall_target=0.5)
        b = ApproxNeighborIndex(space, recall_target=0.5)
        for term in ("laptop", "energy", "computer"):
            assert a.neighbors(term) == b.neighbors(term)

    def test_counters_track_queries_and_candidates(self, space):
        registry = MetricsRegistry()
        index = ApproxNeighborIndex(
            space, recall_target=0.5, registry=registry
        )
        index.neighbors("laptop")
        counters = registry.snapshot()["counters"]
        assert counters["index.queries"] >= 1
        assert "index.candidates" in counters


class TestValidation:
    def test_recall_target_zero_rejected(self, space):
        with pytest.raises(ValueError, match="recall_target"):
            ApproxNeighborIndex(space, recall_target=0.0)

    def test_recall_target_above_one_rejected(self, space):
        with pytest.raises(ValueError, match="recall_target"):
            ApproxNeighborIndex(space, recall_target=1.5)

    def test_planes_must_divide_into_bands(self, space):
        with pytest.raises(ValueError, match="bands"):
            ApproxNeighborIndex(space, planes=60, bands=16)

    def test_default_threshold_matches_exact_default(self, space):
        assert (
            ApproxNeighborIndex(space).threshold
            == DEFAULT_NEIGHBOR_THRESHOLD
            == TokenNeighborhoods(space).threshold
        )
