"""Unit and property tests for sparse vector algebra."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.vectors import ZERO_VECTOR, SparseVector

vectors = st.dictionaries(
    st.integers(min_value=0, max_value=50),
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ),
    max_size=10,
).map(SparseVector)


class TestConstruction:
    def test_drops_zero_components(self):
        v = SparseVector({1: 0.0, 2: 3.0})
        assert len(v) == 1
        assert v.support() == frozenset({2})

    def test_from_pairs(self):
        v = SparseVector([(1, 2.0), (3, 4.0)])
        assert v[1] == 2.0 and v[3] == 4.0

    def test_missing_dimension_is_zero(self):
        assert SparseVector({1: 1.0})[99] == 0.0

    def test_bool(self):
        assert not ZERO_VECTOR
        assert SparseVector({0: 1.0})

    def test_equality_and_hash(self):
        a = SparseVector({1: 2.0})
        b = SparseVector({1: 2.0, 5: 0.0})
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_is_compact(self):
        v = SparseVector({i: float(i + 1) for i in range(10)})
        assert "more" in repr(v)


class TestAlgebra:
    def test_add(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({2: 3.0, 4: 4.0})
        assert a.add(b) == SparseVector({1: 1.0, 2: 5.0, 4: 4.0})

    def test_add_cancels_to_zero(self):
        a = SparseVector({1: 1.0})
        assert a.add(a.scale(-1.0)) == ZERO_VECTOR

    def test_scale(self):
        assert SparseVector({1: 2.0}).scale(0.5) == SparseVector({1: 1.0})
        assert SparseVector({1: 2.0}).scale(0.0) is ZERO_VECTOR

    def test_dot(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({2: 3.0})
        assert a.dot(b) == 6.0

    def test_norm(self):
        assert SparseVector({1: 3.0, 2: 4.0}).norm() == 5.0

    def test_normalized(self):
        v = SparseVector({1: 3.0, 2: 4.0}).normalized()
        assert math.isclose(v.norm(), 1.0)

    def test_normalized_zero(self):
        assert ZERO_VECTOR.normalized() is ZERO_VECTOR

    def test_restrict(self):
        v = SparseVector({1: 1.0, 2: 2.0, 3: 3.0})
        assert v.restrict({2, 3}) == SparseVector({2: 2.0, 3: 3.0})
        assert v.restrict(frozenset()) == ZERO_VECTOR

    def test_euclidean_distance_known_case(self):
        a = SparseVector({1: 1.0})
        b = SparseVector({2: 1.0})
        assert math.isclose(a.euclidean_distance(b), math.sqrt(2))

    def test_cosine_orthogonal(self):
        assert SparseVector({1: 1.0}).cosine_similarity(SparseVector({2: 1.0})) == 0.0

    def test_cosine_with_zero_vector(self):
        assert SparseVector({1: 1.0}).cosine_similarity(ZERO_VECTOR) == 0.0


class TestProperties:
    @given(vectors, vectors)
    def test_add_commutes(self, a, b):
        left, right = a.add(b), b.add(a)
        for dim in left.support() | right.support():
            assert math.isclose(left[dim], right[dim], abs_tol=1e-9)

    @given(vectors, vectors)
    def test_distance_symmetric(self, a, b):
        assert math.isclose(
            a.euclidean_distance(b), b.euclidean_distance(a), abs_tol=1e-9
        )

    @given(vectors)
    def test_distance_to_self_zero(self, a):
        # The dot-product identity carries float error that scales with
        # the norm, hence the relative tolerance.
        assert a.euclidean_distance(a) <= 1e-5 * (1.0 + a.norm())

    @given(vectors, vectors)
    def test_cosine_bounds(self, a, b):
        assert -1.0 <= a.cosine_similarity(b) <= 1.0

    @given(vectors)
    def test_restrict_to_support_is_identity(self, a):
        assert a.restrict(a.support()) == a

    @given(vectors, st.sets(st.integers(min_value=0, max_value=50)))
    def test_restrict_shrinks_support(self, a, basis):
        assert a.restrict(basis).support() <= (a.support() & frozenset(basis))

    @given(vectors, vectors)
    def test_dot_symmetric(self, a, b):
        assert math.isclose(a.dot(b), b.dot(a), abs_tol=1e-9)

    @given(vectors, vectors)
    def test_cauchy_schwarz(self, a, b):
        assert abs(a.dot(b)) <= a.norm() * b.norm() + 1e-6


def test_distance_via_dot_identity_matches_direct_sum():
    a = SparseVector({1: 1.5, 2: -2.0, 7: 0.25})
    b = SparseVector({2: 1.0, 7: 0.25, 9: -4.0})
    direct = math.sqrt(
        sum((a[d] - b[d]) ** 2 for d in a.support() | b.support())
    )
    assert math.isclose(a.euclidean_distance(b), direct, rel_tol=1e-12)
