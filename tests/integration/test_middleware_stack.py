"""Integration of matcher + broker + CEP: the full middleware stack."""

import networkx as nx
import pytest

from repro.broker.broker import ThematicBroker
from repro.broker.overlay import BrokerOverlay
from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern, Step
from repro.cep.predicates import Eq
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import CachedMeasure, ThematicMeasure


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(CachedMeasure(ThematicMeasure(space)))


ALICE_SUBSCRIPTION = parse_subscription(
    "({energy, city},"
    " {type= energy consumption event~, device~= street light~})"
)


def make_street_light_event(consumption_peak: str):
    return parse_event(
        "({energy, light, city},"
        " {type: electricity usage event, device: lamp,"
        f"  zone: city centre, consumption peak: {consumption_peak}}})"
    )


class TestMotivatingScenario:
    """Section 2.1: Alice and the street lights, end to end."""

    def test_broker_delivers_heterogeneous_event(self, matcher):
        broker = ThematicBroker(matcher)
        inbox = broker.subscribe(ALICE_SUBSCRIPTION)
        broker.publish(make_street_light_event("true"))
        assert len(inbox.drain()) == 1

    def test_cep_filters_on_consumption_peak(self, matcher):
        engine = CEPEngine(matcher)
        pattern = Pattern.every(
            "a", ALICE_SUBSCRIPTION, Eq("consumption peak", "true")
        )
        fired = []
        engine.register(pattern, fired.append)
        engine.feed(make_street_light_event("false"))
        engine.feed(make_street_light_event("true"))
        assert len(fired) == 1
        assert fired[0].binding("a").event.value("consumption peak") == "true"

    def test_sequence_over_broker_stream(self, matcher):
        engine = CEPEngine(matcher)
        surge_then_peak = Pattern(
            steps=(
                Step("usage", ALICE_SUBSCRIPTION),
                Step(
                    "peak",
                    ALICE_SUBSCRIPTION,
                    (Eq("consumption peak", "true"),),
                ),
            ),
            within=10,
        )
        completions = []
        engine.register(surge_then_peak, completions.append)

        broker = ThematicBroker(matcher)
        broker.subscribe(ALICE_SUBSCRIPTION, lambda d: engine.feed(d.event))
        broker.publish(make_street_light_event("false"))
        broker.publish(make_street_light_event("true"))
        assert completions
        assert completions[0].probability > 0


class TestOverlayEndToEnd:
    def test_city_scale_overlay(self, space):
        overlay = BrokerOverlay(
            nx.barbell_graph(3, 2),
            lambda: ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
        )
        nodes = overlay.nodes()
        inbox = overlay.subscribe(nodes[-1], ALICE_SUBSCRIPTION)
        delivered = overlay.publish(nodes[0], make_street_light_event("true"))
        assert delivered == 1
        assert len(inbox.inbox) == 1
        assert overlay.metrics.hops >= len(nodes) - 1
