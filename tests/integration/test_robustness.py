"""Failure injection and edge-of-the-world behaviour."""

import pytest

from repro.broker.broker import ThematicBroker
from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern
from repro.core.events import Event
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.semantics.measures import CachedMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy}, {type: increased energy consumption event, device: computer,"
    " office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power}, {type= increased energy usage event~, device~= laptop~,"
    " office= room 112})"
)


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(CachedMeasure(ThematicMeasure(space)))


class TestUnknownVocabulary:
    def test_fully_unknown_event_scores_zero_but_never_crashes(self, matcher):
        alien = Event.create(
            theme={"zzqx"},
            payload={"frobnicator": "quuxify", "blargle": "wibble"},
        )
        assert matcher.score(SUBSCRIPTION.relax(), alien) == 0.0

    def test_unknown_theme_tags(self, matcher):
        themed = EVENT.with_theme({"completely unknown theme tag"})
        # The theme selects an empty basis; every projection is zero,
        # but exact-string correspondences still fire.
        score = matcher.score(SUBSCRIPTION, themed)
        assert 0.0 <= score <= 1.0

    def test_unicode_and_punctuation_terms(self, matcher):
        event = Event.create(
            payload={"tüpe": "énergie—consommation!!", "x": "röom 112"}
        )
        sub = Subscription.create(approximate={"tüpe": "énergie consommation"})
        score = matcher.score(sub, event)
        assert 0.0 <= score <= 1.0

    def test_numeric_values_in_semantic_slots(self, matcher):
        event = Event.create(payload={"reading": 21.5, "type": "noise event"})
        sub = Subscription.create(
            predicates=[
                Predicate("reading", 21.5),
                Predicate("type", "sound level event",
                          approx_attribute=True, approx_value=True),
            ]
        )
        assert matcher.score(sub, event) > 0.0


class TestExtremeThemes:
    def test_whole_pool_theme(self, matcher, thesaurus):
        pool = thesaurus.top_terms()
        score = matcher.score(
            SUBSCRIPTION.with_theme(pool), EVENT.with_theme(pool)
        )
        assert 0.0 <= score <= 1.0

    def test_one_side_empty_theme(self, matcher, thesaurus):
        score = matcher.score(
            SUBSCRIPTION.with_theme(thesaurus.top_terms()[:5]),
            EVENT.with_theme(()),
        )
        assert 0.0 <= score <= 1.0


class TestCallbackIsolation:
    def test_broker_survives_raising_callback(self, matcher):
        broker = ThematicBroker(matcher)

        def explode(delivery):
            raise RuntimeError("subscriber bug")

        bad = broker.subscribe(SUBSCRIPTION, explode)
        good_deliveries = []
        broker.subscribe(SUBSCRIPTION, good_deliveries.append)

        delivered = broker.publish(EVENT)
        assert delivered == 2
        # The default policy retries (1 + 3 attempts), every failed
        # attempt is counted, and the exhausted delivery is
        # dead-lettered rather than silently placed in the inbox.
        assert broker.metrics.callback_errors == 4
        assert len(good_deliveries) == 1
        assert bad.drain() == []
        records = broker.dead_letters.drain()
        assert len(records) == 1
        assert records[0].reason == "retries_exhausted"
        assert "subscriber bug" in records[0].error

    def test_engine_threshold_zero_and_one(self, space):
        permissive = ThematicMatcher(ThematicMeasure(space), threshold=0.0)
        strict = ThematicMatcher(ThematicMeasure(space), threshold=1.0)
        assert permissive.matches(SUBSCRIPTION, EVENT)
        assert not strict.matches(
            SUBSCRIPTION,
            Event.create(payload={"type": "noise event", "a": "b", "c": "d"}),
        )


class TestCEPEdges:
    def test_pattern_with_unmatchable_step_never_fires(self, matcher):
        engine = CEPEngine(matcher)
        never = parse_subscription("({x}, {frobnicator~= quuxify~})")
        fired = []
        engine.register(Pattern.every("a", never), fired.append)
        for _ in range(5):
            engine.feed(EVENT)
        assert fired == []

    def test_long_stream_bounded_partials(self, matcher):
        from repro.cep.patterns import Step

        engine = CEPEngine(matcher)
        sub_a = parse_subscription("({power}, {type= increased energy usage event~})")
        never = parse_subscription("({x}, {frobnicator~= quuxify~})")
        handle = engine.register(
            Pattern(steps=(Step("a", sub_a), Step("b", never)), within=3)
        )
        for _ in range(50):
            engine.feed(EVENT)
        # The window must garbage-collect stale partial instances.
        assert len(handle.partials) <= 4
