"""End-to-end integration: workload -> matchers -> evaluation shapes.

These are the repository's acceptance tests: they assert (at test scale)
the qualitative results of Section 5.3 rather than unit behaviour.
"""

import random

import pytest

from repro.evaluation import (
    ThemeCombination,
    run_baseline,
    run_sub_experiment,
    theme_pool,
    thematic_matcher_factory,
)


@pytest.fixture(scope="module")
def baseline(tiny_workload):
    return run_baseline(tiny_workload)


@pytest.fixture(scope="module")
def good_cell(tiny_workload):
    """A mid-grid theme combination (the paper's sweet spot region)."""
    pool = list(theme_pool(tiny_workload.thesaurus))
    rng = random.Random(99)
    subscription_tags = tuple(rng.sample(pool, 12))
    event_tags = tuple(rng.sample(subscription_tags, 4))
    return run_sub_experiment(
        tiny_workload,
        thematic_matcher_factory(tiny_workload),
        ThemeCombination(event_tags=event_tags, subscription_tags=subscription_tags),
    )


class TestBaselineShape:
    def test_baseline_f1_in_papers_regime(self, baseline):
        # The paper's non-thematic baseline sits at 62%; the scaled-down
        # workload must keep it in a comparable band — neither trivial
        # (>90%) nor broken (<35%).
        assert 0.35 <= baseline.f1 <= 0.90

    def test_baseline_throughput_positive(self, baseline):
        assert baseline.events_per_second > 1


class TestThematicShape:
    def test_good_cell_completes_with_sane_f1(self, good_cell):
        assert 0.35 <= good_cell.f1 <= 1.0

    def test_single_tag_themes_hurt(self, tiny_workload, good_cell):
        pool = list(theme_pool(tiny_workload.thesaurus))
        tiny = run_sub_experiment(
            tiny_workload,
            thematic_matcher_factory(tiny_workload),
            ThemeCombination(event_tags=(pool[0],), subscription_tags=(pool[0],)),
        )
        # Figure 7: single-tag themes are a failure region relative to
        # the well-sized cells.
        assert tiny.f1 <= good_cell.f1 + 0.05


class TestMatcherAgreement:
    def test_exact_hits_score_higher_than_semantic_hits(self, tiny_workload):
        matcher = thematic_matcher_factory(tiny_workload)()
        sub = tiny_workload.subscriptions.approximate[0]
        seed_index = tiny_workload.subscriptions.seed_indexes[0]
        verbatim = [
            item.event
            for item in tiny_workload.expanded
            if item.seed_index == seed_index and item.replacements == 0
        ][0]
        rewritten = [
            item.event
            for item in tiny_workload.expanded
            if item.seed_index == seed_index
            and item.replacements > 1
            and not item.distractor
        ]
        if not rewritten:
            pytest.skip("no heavily rewritten variant for this seed")
        assert matcher.score(sub, verbatim) >= matcher.score(sub, rewritten[0])

    def test_relevant_events_outscore_majority_of_irrelevant(self, tiny_workload):
        matcher = thematic_matcher_factory(tiny_workload)()
        pool = list(theme_pool(tiny_workload.thesaurus))
        rng = random.Random(3)
        sub_tags = tuple(rng.sample(pool, 10))
        event_tags = tuple(rng.sample(sub_tags, 3))
        sub = tiny_workload.subscriptions.approximate[0].with_theme(sub_tags)
        relevant = tiny_workload.ground_truth.relevant_to(0)
        scores = [
            matcher.score(sub, event.with_theme(event_tags))
            for event in tiny_workload.events
        ]
        relevant_mean = sum(scores[i] for i in relevant) / len(relevant)
        irrelevant = [s for i, s in enumerate(scores) if i not in relevant]
        irrelevant_mean = sum(irrelevant) / len(irrelevant)
        assert relevant_mean > irrelevant_mean
