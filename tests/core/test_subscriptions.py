"""Unit tests for the subscription model (Section 3.4)."""

import pytest

from repro.core.subscriptions import Predicate, Subscription


class TestPredicate:
    def test_str_with_tildes(self):
        p = Predicate("device", "laptop", approx_attribute=True, approx_value=True)
        assert str(p) == "device~= laptop~"

    def test_str_exact(self):
        assert str(Predicate("office", "room 112")) == "office= room 112"

    def test_rejects_empty_attribute(self):
        with pytest.raises(ValueError):
            Predicate(" ", "x")

    def test_rejects_approximated_numeric_value(self):
        with pytest.raises(ValueError):
            Predicate("reading", 5, approx_value=True)


class TestSubscription:
    def test_needs_predicates(self):
        with pytest.raises(ValueError):
            Subscription(theme=frozenset(), predicates=())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate predicate"):
            Subscription.create(
                predicates=[Predicate("a", 1), Predicate("A", 2)]
            )

    def test_create_shorthands(self):
        sub = Subscription.create(
            theme={"power"},
            exact={"office": "room 112"},
            approximate={"device": "laptop"},
        )
        by_attr = {p.attribute: p for p in sub.predicates}
        assert not by_attr["office"].approx_attribute
        assert by_attr["device"].approx_attribute
        assert by_attr["device"].approx_value


class TestDegreeOfApproximation:
    def test_exact_is_zero(self):
        sub = Subscription.create(exact={"a": "x", "b": "y"})
        assert sub.degree_of_approximation() == 0.0

    def test_fully_relaxed_is_one(self):
        sub = Subscription.create(exact={"a": "x"}).relax()
        assert sub.degree_of_approximation() == 1.0

    def test_half_degree(self):
        sub = Subscription.create(
            predicates=[
                Predicate("a", "x", approx_attribute=True, approx_value=True),
                Predicate("b", "y"),
            ]
        )
        assert sub.degree_of_approximation() == 0.5

    def test_paper_example_degree(self):
        # "{type= increased energy usage event~, device~= laptop~,
        #   office= room 112}" has 3 of 6 sides relaxed.
        sub = Subscription.create(
            predicates=[
                Predicate("type", "increased energy usage event", approx_value=True),
                Predicate("device", "laptop", approx_attribute=True, approx_value=True),
                Predicate("office", "room 112"),
            ]
        )
        assert sub.degree_of_approximation() == 0.5


class TestRelax:
    def test_relaxes_string_sides(self):
        sub = Subscription.create(exact={"device": "laptop"}).relax()
        (p,) = sub.predicates
        assert p.approx_attribute and p.approx_value

    def test_keeps_numeric_values_exact(self):
        sub = Subscription.create(exact={"reading": 5}).relax()
        (p,) = sub.predicates
        assert p.approx_attribute and not p.approx_value

    def test_idempotent(self):
        sub = Subscription.create(exact={"a": "x"})
        assert sub.relax() == sub.relax().relax()


def test_terms_and_with_theme():
    sub = Subscription.create(theme={"t"}, exact={"device": "laptop", "n": 3})
    assert sub.terms() == ("device", "laptop", "n")
    assert sub.with_theme({"u"}).theme == frozenset({"u"})
    assert len(sub) == 2
