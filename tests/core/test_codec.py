"""Tests for the JSON wire codec."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.codec import (
    dumps,
    event_from_dict,
    loads,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription

EVENT = Event.create(
    theme={"energy", "appliances"},
    payload={"type": "increased energy consumption event", "reading": 21.5},
)
SUBSCRIPTION = Subscription.create(
    theme={"power"},
    predicates=[
        Predicate("device", "laptop", approx_attribute=True, approx_value=True),
        Predicate("temperature", 30, operator=">"),
        Predicate("office", "room 112"),
    ],
)


class TestRoundTrip:
    def test_event(self):
        assert loads(dumps(EVENT)) == EVENT

    def test_subscription(self):
        assert loads(dumps(SUBSCRIPTION)) == SUBSCRIPTION

    def test_payload_order_preserved(self):
        event = Event.create(payload=[("b", 1), ("a", 2)])
        assert loads(dumps(event)).attributes() == ("b", "a")

    def test_numbers_stay_numbers(self):
        decoded = loads(dumps(EVENT))
        assert decoded.value("reading") == 21.5

    def test_output_is_plain_json(self):
        data = json.loads(dumps(EVENT))
        assert data["kind"] == "event"
        assert data["theme"] == ["appliances", "energy"]  # sorted

    terms = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz ", min_size=1, max_size=12
    ).filter(lambda s: s.strip())

    @given(
        st.dictionaries(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
            st.one_of(terms, st.integers(-100, 100)),
            min_size=1,
            max_size=5,
        ),
        st.sets(terms, max_size=3),
    )
    def test_generated_events_roundtrip(self, payload, theme):
        event = Event.create(theme=theme, payload=payload)
        assert loads(dumps(event)) == event


class TestValidation:
    def test_wrong_kind_for_event(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "subscription", "payload": []})

    def test_wrong_kind_for_subscription(self):
        with pytest.raises(ValueError):
            subscription_from_dict({"kind": "event", "predicates": []})

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            loads(json.dumps({"kind": "banana"}))

    def test_unserializable_type(self):
        with pytest.raises(TypeError):
            dumps("just a string")  # type: ignore[arg-type]

    def test_default_flags(self):
        data = subscription_to_dict(SUBSCRIPTION)
        for predicate in data["predicates"]:
            del predicate["approx_attribute"]
        decoded = subscription_from_dict(data)
        assert all(not p.approx_attribute for p in decoded.predicates)
