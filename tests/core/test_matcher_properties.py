"""Property-based tests for matcher invariants (hypothesis).

Events and subscriptions are generated over the thesaurus vocabulary so
the semantic measure sees realistic terms; the invariants must hold for
every generated instance.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.semantics.measures import CachedMeasure, ThematicMeasure

VOCAB = [
    "energy consumption", "electricity usage", "parking", "garage",
    "computer", "laptop", "temperature", "rainfall", "room 112",
    "galway", "dublin", "increased", "decreased", "kilowatt hour",
]
ATTRS = ["type", "device", "city", "room", "unit", "status"]
THEMES = [
    "energy", "pollution", "land transport", "communications",
    "social affairs", "regions",
]

terms = st.sampled_from(VOCAB)
attrs = st.sampled_from(ATTRS)
theme_sets = st.sets(st.sampled_from(THEMES), max_size=4)

events = st.builds(
    lambda pairs, theme: Event.create(theme=theme, payload=pairs),
    st.dictionaries(attrs, terms, min_size=1, max_size=5),
    theme_sets,
)
subscriptions = st.builds(
    lambda pairs, theme, approx: Subscription.create(
        theme=theme,
        predicates=[
            Predicate(a, v, approx_attribute=approx, approx_value=approx)
            for a, v in pairs.items()
        ],
    ),
    st.dictionaries(attrs, terms, min_size=1, max_size=3),
    theme_sets,
    st.booleans(),
)

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def matcher(space):
    return ThematicMatcher(CachedMeasure(ThematicMeasure(space)), k=3)


class TestInvariants:
    @COMMON
    @given(subscriptions, events)
    def test_score_bounded(self, matcher, sub, event):
        assert 0.0 <= matcher.score(sub, event) <= 1.0

    @COMMON
    @given(subscriptions, events)
    def test_matches_consistent_with_score(self, matcher, sub, event):
        assert matcher.matches(sub, event) == (
            matcher.score(sub, event) >= matcher.threshold
        )

    @COMMON
    @given(subscriptions, events, attrs, terms)
    def test_extra_tuple_never_hurts(self, matcher, sub, event, attr, value):
        """Adding an unrelated tuple can only widen the mapping choices."""
        if event.value(attr) is not None:
            return  # would collide
        extended = Event.create(
            theme=event.theme,
            payload=list((av.attribute, av.value) for av in event.payload)
            + [(attr, value)],
        )
        assert matcher.score(sub, extended) >= matcher.score(sub, event) - 1e-9

    @COMMON
    @given(subscriptions, events)
    def test_topk_sorted_and_normalized(self, matcher, sub, event):
        result = matcher.match(sub, event)
        if result is None:
            return
        mappings = result.mappings()
        probabilities = [m.probability for m in mappings]
        assert all(
            a >= b - 1e-9 for a, b in zip(probabilities, probabilities[1:], strict=False)
        )
        total = sum(probabilities)
        assert total == 0.0 or abs(total - 1.0) < 1e-6

    @COMMON
    @given(subscriptions, events)
    def test_mapping_is_injective(self, matcher, sub, event):
        result = matcher.match(sub, event)
        if result is None:
            return
        for mapping in result.mappings():
            tuple_indexes = [c.tuple_index for c in mapping.correspondences]
            assert len(tuple_indexes) == len(set(tuple_indexes))
            assert len(tuple_indexes) == len(sub.predicates)

    @COMMON
    @given(events)
    def test_self_subscription_scores_one(self, matcher, event):
        """An exact subscription built from the event's own tuples is a
        perfect match."""
        sub = Subscription.create(
            exact={av.attribute: av.value for av in event.payload}
        )
        assert matcher.score(sub, event) == pytest.approx(1.0)

    @COMMON
    @given(subscriptions, events)
    def test_deterministic(self, matcher, sub, event):
        assert matcher.score(sub, event) == matcher.score(sub, event)
