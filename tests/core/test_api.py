"""The MatchEngine contract: all four Table-1 approaches, one interface."""

import pytest

from repro.baselines.exact import ExactMatcher
from repro.baselines.nonthematic import NonThematicMatcher
from repro.baselines.rewriting import RewritingMatcher
from repro.core.api import BatchMatchResult, MatchEngine, pairwise_match_batch
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

SUBSCRIPTIONS = [
    "({transport}, {vehicle~= bus~})",
    "({transport}, {vehicle= bus})",
    "({environment}, {pollutant~= ozone~, unit= microgram})",
]
EVENTS = [
    "({transport}, {vehicle: bus})",
    "({transport}, {car: tram, speed: 42})",
    "({environment}, {pollutant: smog, unit: microgram})",
]


def engines(space, thesaurus):
    """One instance of each Table-1 approach."""
    return {
        "thematic": ThematicMatcher(ThematicMeasure(space)),
        "nonthematic": NonThematicMatcher(space),
        "exact": ExactMatcher(),
        "rewriting": RewritingMatcher(thesaurus),
    }


@pytest.fixture()
def artifacts():
    subs = [parse_subscription(s) for s in SUBSCRIPTIONS]
    events = [parse_event(e) for e in EVENTS]
    return subs, events


class TestProtocolParity:
    def test_every_approach_satisfies_match_engine(self, space, thesaurus):
        for name, engine in engines(space, thesaurus).items():
            assert isinstance(engine, MatchEngine), name

    def test_every_approach_has_the_full_surface(self, space, thesaurus):
        for name, engine in engines(space, thesaurus).items():
            assert 0.0 <= engine.threshold <= 1.0, name
            for method in ("match", "matches", "score", "match_batch"):
                assert callable(getattr(engine, method)), (name, method)

    def test_none_match_implies_zero_score(self, space, thesaurus, artifacts):
        subs, events = artifacts
        for name, engine in engines(space, thesaurus).items():
            for sub in subs:
                for event in events:
                    if engine.match(sub, event) is None:
                        assert engine.score(sub, event) == 0.0, name

    def test_batch_grid_equals_per_pair_scores(self, space, thesaurus, artifacts):
        subs, events = artifacts
        for name, engine in engines(space, thesaurus).items():
            batch = engine.match_batch(subs, events)
            for i, sub in enumerate(subs):
                for j, event in enumerate(events):
                    assert batch.score(i, j) == engine.score(sub, event), name


class TestBatchMatchResult:
    def test_shape_and_accessors(self, space, artifacts):
        subs, events = artifacts
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = engine.match_batch(subs, events)
        assert batch.shape == (len(subs), len(events))
        assert isinstance(batch, BatchMatchResult)
        grid = batch.score_grid()
        assert grid == batch.scores
        grid[0][0] = -1.0  # copies, not views
        assert batch.scores[0][0] != -1.0

    def test_full_mode_carries_results(self, space, artifacts):
        subs, events = artifacts
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = engine.match_batch(subs, events)
        result = batch.result(0, 0)
        assert result is not None
        assert result.score == batch.score(0, 0)

    def test_matched_yields_threshold_survivors(self, space, artifacts):
        subs, events = artifacts
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = engine.match_batch(subs, events)
        hits = list(batch.matched(engine.threshold))
        assert all(r.score >= engine.threshold for _, _, r in hits)
        expected = sum(
            1
            for sub in subs
            for event in events
            if engine.matches(sub, event)
        )
        assert len(hits) == expected

    def test_scores_only_has_no_results(self, space, artifacts):
        subs, events = artifacts
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = engine.match_batch(subs, events, scores_only=True)
        assert batch.results is None
        assert batch.result(0, 0) is None
        with pytest.raises(ValueError):
            list(batch.matched(0.5))


class TestPairwiseReference:
    def test_reference_loop_matches_direct_calls(self, space, artifacts):
        subs, events = artifacts
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = pairwise_match_batch(engine, subs, events)
        for i, sub in enumerate(subs):
            for j, event in enumerate(events):
                assert batch.score(i, j) == engine.score(sub, event)

    def test_boolean_engine_through_reference(self, thesaurus, artifacts):
        subs, events = artifacts
        engine = RewritingMatcher(thesaurus)
        batch = pairwise_match_batch(engine, subs, events, scores_only=True)
        assert batch.results is None
        for i, sub in enumerate(subs):
            for j, event in enumerate(events):
                assert batch.score(i, j) == engine.score(sub, event)
