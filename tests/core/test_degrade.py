"""Degraded-mode controller and its wiring into the event engine."""

import logging

import pytest

from repro.core.degrade import DegradedMode, DegradedPolicy
from repro.core.engine import EngineConfig, ThematicEventEngine
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.obs import MetricsRegistry
from repro.obs.clock import FakeClock
from repro.semantics.measures import ThematicMeasure

def make_event(token="base"):
    """Variant events that all match both subscriptions below.

    The staged pipeline's side-score table persists across batches, so a
    literally repeated event would never reach the semantic measure
    again (and a scorer spike would be invisible). The throwaway
    ``extra`` attribute varies per batch, forcing a couple of fresh
    measure calls each time without disturbing what matches.
    """
    return parse_event(
        "({energy, appliances, building},"
        " {type: increased energy consumption event, device: computer,"
        f"  office: room 112, extra: {token}}})"
    )


#: Matches thematically AND exactly (literal attribute values).
EXACT_SUB = parse_subscription(
    "({energy, appliances},"
    " {type= increased energy consumption event, office= room 112})"
)
#: Matches only thematically (approximate terms, no literal anchors).
APPROX_SUB = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


def controller(policy=None, clock=None, registry=None):
    clock = clock if clock is not None else FakeClock()
    registry = registry if registry is not None else MetricsRegistry()
    policy = policy if policy is not None else DegradedPolicy(
        latency_budget=0.1, cooldown=5.0
    )
    return DegradedMode(policy, clock=clock, registry=registry), clock, registry


def degraded_counters(registry):
    counters = registry.snapshot()["counters"]
    return {
        key.removeprefix("engine.degraded_"): value
        for key, value in counters.items()
        if key.startswith("engine.degraded_")
    }


class TestDegradedPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_budget": 0.0},
            {"latency_budget": -1.0},
            {"latency_budget": 1.0, "cooldown": -1.0},
            {"latency_budget": 1.0, "trip_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DegradedPolicy(**kwargs)


class TestDegradedMode:
    def test_healthy_until_budget_exceeded(self):
        mode, _, registry = controller()
        assert not mode.use_fallback()
        mode.observe(0.05)
        assert not mode.degraded
        mode.observe(0.5)
        assert mode.degraded
        assert degraded_counters(registry)["trips"] == 1
        assert registry.snapshot()["gauges"]["engine.degraded_active"] == 1.0

    def test_trip_after_requires_consecutive_over_budget(self):
        policy = DegradedPolicy(latency_budget=0.1, trip_after=2)
        mode, _, _ = controller(policy)
        mode.observe(0.5)
        assert not mode.degraded  # one spike rides out
        mode.observe(0.05)  # within budget: streak resets
        mode.observe(0.5)
        assert not mode.degraded
        mode.observe(0.5)
        assert mode.degraded

    def test_probe_after_cooldown_then_recover(self):
        mode, clock, registry = controller()
        mode.observe(0.5)
        assert mode.use_fallback()  # inside cooldown
        clock.advance(5.0)
        assert not mode.use_fallback()  # probe armed: run the full path
        mode.observe(0.05)  # probe within budget
        assert not mode.degraded
        snap = degraded_counters(registry)
        assert snap["recoveries"] == 1
        assert registry.snapshot()["gauges"]["engine.degraded_active"] == 0.0

    def test_failed_probe_restarts_cooldown(self):
        mode, clock, registry = controller()
        mode.observe(0.5)
        clock.advance(5.0)
        assert not mode.use_fallback()  # probe
        mode.observe(0.5)  # probe blows the budget too
        assert mode.degraded
        assert mode.use_fallback()  # cooldown restarted
        assert degraded_counters(registry)["trips"] == 2

    def test_fallback_batches_counted(self):
        mode, _, registry = controller()
        mode.note_fallback_batch()
        mode.note_fallback_batch()
        assert degraded_counters(registry)["batches"] == 2

    def test_manual_unhealthy_overrides_until_healthy(self, caplog):
        mode, _, registry = controller()
        with caplog.at_level(logging.WARNING, logger="repro.core.degrade"):
            mode.mark_unhealthy("cache corrupted")
        assert mode.degraded
        assert mode.use_fallback()
        assert any("cache corrupted" in r.message for r in caplog.records)
        mode.mark_healthy()
        assert not mode.degraded
        assert not mode.use_fallback()
        kinds = [event.kind for event in mode.events]
        assert kinds == ["mark_unhealthy", "mark_healthy"]
        assert registry.snapshot()["gauges"]["engine.degraded_active"] == 0.0

    def test_transitions_recorded_with_clock_times(self):
        mode, clock, _ = controller()
        clock.advance(3.0)
        mode.observe(0.5)
        assert mode.events[0].kind == "trip"
        assert mode.events[0].at == pytest.approx(3.0)
        assert "budget" in mode.events[0].reason


class _SpikyMeasure:
    """Test double: advance the clock by ``spike`` per score call."""

    def __init__(self, inner, clock):
        self._inner = inner
        self._clock = clock
        self.spike = 0.0

    def score(self, *args):
        if self.spike:
            self._clock.advance(self.spike)
        return self._inner.score(*args)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestEngineIntegration:
    def engine(self, space):
        clock = FakeClock()
        matcher = ThematicMatcher(ThematicMeasure(space))
        measure = _SpikyMeasure(matcher.measure, clock)
        matcher.measure = measure
        engine = ThematicEventEngine(
            matcher,
            EngineConfig(degraded=DegradedPolicy(latency_budget=0.1, cooldown=5.0)),
            clock=clock,
        )
        return engine, measure, clock

    def test_trip_fallback_probe_recover_end_to_end(self, space):
        engine, measure, clock = self.engine(space)
        exact_seen, approx_seen = [], []
        engine.subscribe(EXACT_SUB, exact_seen.append)
        engine.subscribe(APPROX_SUB, approx_seen.append)

        # Healthy: full thematic path delivers to both subscribers.
        engine.process(make_event("alpha"))
        assert len(exact_seen) == len(approx_seen) == 1
        assert not engine.degraded.degraded

        # A slow backend blows the budget; this batch still completes on
        # the full path, then the engine trips.
        measure.spike = 1.0
        engine.process(make_event("beta"))
        assert len(exact_seen) == len(approx_seen) == 2
        assert engine.degraded.degraded

        # Degraded: exact-anchor fallback keeps literal matches flowing
        # and drops only the approximate fragment of the workload.
        measure.spike = 0.0
        engine.process(make_event("gamma"))
        assert len(exact_seen) == 3
        assert len(approx_seen) == 2
        snap = engine.metrics_snapshot()
        registry_snap = engine.stats.registry.snapshot()["counters"]
        assert registry_snap["engine.degraded_batches"] == 1
        assert snap["deliveries"] == 5

        # After the cooldown the next batch probes the (now fast) full
        # path and the engine recovers.
        clock.advance(5.0)
        engine.process(make_event("delta"))
        assert len(exact_seen) == 4
        assert len(approx_seen) == 3
        assert not engine.degraded.degraded
        assert (
            engine.stats.registry.snapshot()["counters"][
                "engine.degraded_recoveries"
            ]
            == 1
        )

    def test_match_one_shielded_while_degraded(self, space):
        """Regression: the single-pair path (replay/ad-hoc) used to run
        the full semantic backend even while the controller was
        degraded, bypassing the shield entirely."""
        engine, measure, clock = self.engine(space)
        event = make_event("solo")
        # Healthy: the full thematic path serves single-pair matches.
        assert engine.match_one(APPROX_SUB, event) is not None
        engine.degraded.mark_unhealthy("cache corrupted")
        # Degraded: exact-anchor fallback — the literal subscription
        # still matches, the approximate one no longer does, and the
        # (now very slow) semantic backend is never touched.
        measure.spike = 100.0
        before = clock.monotonic()
        assert engine.match_one(EXACT_SUB, event) is not None
        assert engine.match_one(APPROX_SUB, event) is None
        assert clock.monotonic() == before
        counters = engine.stats.registry.snapshot()["counters"]
        assert counters["engine.degraded_matches"] == 2
        # Recovery restores the full path for single pairs too.
        engine.degraded.mark_healthy()
        measure.spike = 0.0
        assert engine.match_one(APPROX_SUB, event) is not None

    def test_replay_uses_fallback_while_degraded(self, space):
        from repro.broker import BrokerConfig, ThematicBroker

        clock = FakeClock()
        broker = ThematicBroker(
            ThematicMatcher(ThematicMeasure(space)),
            BrokerConfig(
                degraded=DegradedPolicy(latency_budget=0.1, cooldown=5.0)
            ),
            clock=clock,
        )
        broker.publish(make_event("one"))
        broker.engine.degraded.mark_unhealthy("backend down")
        exact_late = broker.subscribe(EXACT_SUB, replay=True)
        approx_late = broker.subscribe(APPROX_SUB, replay=True)
        assert len(exact_late.drain()) == 1
        assert approx_late.drain() == []  # approximate fragment suspended

    def test_no_policy_means_no_controller(self, space):
        matcher = ThematicMatcher(ThematicMeasure(space))
        engine = ThematicEventEngine(matcher)
        assert engine.degraded is None

    def test_fallback_requires_matcher_family(self):
        class Opaque:
            threshold = 0.5

            def match_batch(self, *a, **k):  # pragma: no cover - stub
                raise NotImplementedError

        with pytest.raises(ValueError, match="ThematicMatcher-family"):
            ThematicEventEngine(
                Opaque(),
                EngineConfig(degraded=DegradedPolicy(latency_budget=0.1)),
            )
