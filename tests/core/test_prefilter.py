"""Tests for the two-phase matcher (candidate prefiltering)."""

import pytest

from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.core.prefilter import TokenNeighborhoods, TwoPhaseMatcher
from repro.semantics.measures import CachedMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event,"
    "  measurement unit: kilowatt hour, device: computer, office: room 112})"
)
MATCHING = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)
WRONG_ANCHOR = parse_subscription(
    "({power}, {type= increased energy usage event~, office= room 999})"
)
TOO_BIG = parse_subscription(
    "({x}, {a~= b~, c~= d~, e~= f~, g~= h~, i~= j~, k~= l~})"
)


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(CachedMeasure(ThematicMeasure(space)))


class TestTokenNeighborhoods:
    def test_includes_own_tokens(self, space):
        hoods = TokenNeighborhoods(space)
        assert "laptop" in hoods.neighbors("laptop")

    def test_includes_synonym_tokens(self, space):
        hoods = TokenNeighborhoods(space, threshold=0.45)
        assert "computer" in hoods.neighbors("laptop")

    def test_unknown_term_is_self_only(self, space):
        hoods = TokenNeighborhoods(space)
        assert hoods.neighbors("zebra") == frozenset({"zebra"})

    def test_higher_threshold_smaller_neighborhood(self, space):
        loose = TokenNeighborhoods(space, threshold=0.44)
        tight = TokenNeighborhoods(space, threshold=0.6)
        assert tight.neighbors("laptop") <= loose.neighbors("laptop")


class TestExactPhases:
    def test_arity_pruning(self, matcher):
        index = TwoPhaseMatcher(matcher)
        index.add(TOO_BIG)
        assert index.match_event(EVENT) == []
        assert index.stats.pruned_arity == 1
        assert index.stats.full_matches_run == 0

    def test_exact_anchor_pruning(self, matcher):
        index = TwoPhaseMatcher(matcher)
        index.add(WRONG_ANCHOR)
        assert index.match_event(EVENT) == []
        assert index.stats.pruned_exact_anchor == 1
        assert index.stats.full_matches_run == 0

    def test_survivor_matches(self, matcher):
        index = TwoPhaseMatcher(matcher)
        sub_id = index.add(MATCHING)
        matches = index.match_event(EVENT)
        assert [m[0] for m in matches] == [sub_id]
        assert index.stats.delivered == 1

    def test_remove(self, matcher):
        index = TwoPhaseMatcher(matcher)
        sub_id = index.add(MATCHING)
        assert index.remove(sub_id)
        assert index.match_event(EVENT) == []
        assert not index.remove(sub_id)
        assert len(index) == 0

    def test_exact_phases_are_lossless(self, matcher, tiny_workload):
        """Without semantic anchors the two-phase matcher returns exactly
        what a full scan returns."""
        index = TwoPhaseMatcher(matcher)  # no space -> no lossy phase
        subs = tiny_workload.subscriptions.approximate[:6]
        for sub in subs:
            index.add(sub)
        for event in tiny_workload.events[:40]:
            via_index = {sub_id for sub_id, _ in index.match_event(event)}
            via_scan = {
                i for i, sub in enumerate(subs) if matcher.matches(sub, event)
            }
            assert via_index == via_scan


class TestSemanticAnchors:
    def test_prunes_unrelated_event(self, matcher, space):
        index = TwoPhaseMatcher(matcher, space)
        index.add(
            parse_subscription("({power}, {type~= energy usage event~})")
        )
        unrelated = parse_event(
            "({social questions}, {type: meeting gathering, room: room 9})"
        )
        index.match_event(unrelated)
        assert index.stats.pruned_semantic_anchor == 1

    def test_keeps_synonym_event(self, matcher, space):
        index = TwoPhaseMatcher(matcher, space)
        sub_id = index.add(
            parse_subscription("({power, computers}, {device~= laptop~})")
        )
        event = parse_event("({energy}, {device: computer})")
        matches = index.match_event(event)
        assert [m[0] for m in matches] == [sub_id]

    def test_recall_on_workload(self, matcher, space, tiny_workload):
        """The lossy phase must keep the vast majority of true matches
        at the default threshold."""
        full = TwoPhaseMatcher(matcher)
        lossy = TwoPhaseMatcher(matcher, space)
        subs = tiny_workload.subscriptions.approximate[:6]
        for sub in subs:
            full.add(sub)
            lossy.add(sub)
        kept = missed = 0
        for event in tiny_workload.events[:60]:
            exact = {sub_id for sub_id, _ in full.match_event(event)}
            filtered = {sub_id for sub_id, _ in lossy.match_event(event)}
            kept += len(exact & filtered)
            missed += len(exact - filtered)
        assert kept > 0
        assert missed <= 0.1 * (kept + missed), (kept, missed)
