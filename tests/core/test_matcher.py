"""Tests for the approximate matcher on the paper's running example."""

import pytest

from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ExactMeasure, NonThematicMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event,"
    "  measurement unit: kilowatt hour, device: computer, office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)
IRRELEVANT = parse_event(
    "({transport},"
    " {type: parking space occupied event, street: main street,"
    "  city: santander, spot: 4})"
)


@pytest.fixture(scope="module")
def thematic(space):
    return ThematicMatcher(ThematicMeasure(space), k=3)


class TestRunningExample:
    def test_match_found(self, thematic):
        result = thematic.match(SUBSCRIPTION, EVENT)
        assert result is not None
        assert result.is_match(thematic.threshold)

    def test_top1_mapping_is_the_papers(self, thematic):
        # σ* of Section 3: type<->type, device<->device, office<->office.
        result = thematic.match(SUBSCRIPTION, EVENT)
        chosen = {
            result.matrix.event.payload[corr.tuple_index].attribute
            for corr in result.mapping.correspondences
        }
        assert chosen == {"type", "device", "office"}

    def test_topk_returns_alternatives(self, thematic):
        result = thematic.match(SUBSCRIPTION, EVENT)
        assert len(result.alternatives) == 2
        assert result.mapping.probability >= result.alternatives[0].probability

    def test_irrelevant_event_rejected(self, thematic):
        assert not thematic.matches(SUBSCRIPTION, IRRELEVANT)
        assert thematic.score(SUBSCRIPTION, IRRELEVANT) < thematic.threshold

    def test_explain_mentions_score(self, thematic):
        result = thematic.match(SUBSCRIPTION, EVENT)
        assert "score=" in result.explain()

    def test_mappings_accessor(self, thematic):
        result = thematic.match(SUBSCRIPTION, EVENT)
        assert result.mappings()[0] is result.mapping


class TestModesAndEdges:
    def test_exact_measure_degenerates_to_content_based(self):
        matcher = ThematicMatcher(ExactMeasure(), threshold=0.99)
        assert not matcher.matches(SUBSCRIPTION, EVENT)  # laptop != computer
        exact_sub = parse_subscription(
            "{type= increased energy consumption event, office= room 112}"
        )
        assert matcher.matches(exact_sub, EVENT)

    def test_nonthematic_measure_also_matches_here(self, space):
        matcher = ThematicMatcher(NonThematicMeasure(space))
        assert matcher.matches(SUBSCRIPTION, EVENT)

    def test_none_when_event_too_small(self, thematic):
        small = parse_event("({energy}, {type: increased energy consumption event})")
        assert thematic.match(SUBSCRIPTION, small) is None
        assert thematic.score(SUBSCRIPTION, small) == 0.0
        assert not thematic.matches(SUBSCRIPTION, small)

    def test_invalid_parameters_rejected(self, space):
        measure = ThematicMeasure(space)
        with pytest.raises(ValueError):
            ThematicMatcher(measure, k=0)
        with pytest.raises(ValueError):
            ThematicMatcher(measure, threshold=1.5)

    def test_score_between_zero_and_one(self, thematic, tiny_workload):
        for event in tiny_workload.events[:20]:
            value = thematic.score(SUBSCRIPTION, event)
            assert 0.0 <= value <= 1.0

    def test_uncalibrated_scores_differ(self, space):
        raw = ThematicMatcher(ThematicMeasure(space), calibration=None)
        calibrated = ThematicMatcher(ThematicMeasure(space))
        assert raw.score(SUBSCRIPTION, EVENT) != calibrated.score(
            SUBSCRIPTION, EVENT
        )
