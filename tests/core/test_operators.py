"""Tests for the extension operators (!=, >, >=, <, <=).

The paper keeps these out of the language for discourse simplicity; the
implementation supports them as a practical extension (value side
non-semantic, attribute side still approximable).
"""

import pytest

from repro.core.events import Event
from repro.core.language import ParseError, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.semantics.measures import ThematicMeasure


class TestPredicateValidation:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            Predicate("a", 1, operator="~=")

    def test_numeric_operator_needs_number(self):
        with pytest.raises(ValueError):
            Predicate("a", "hot", operator=">")

    def test_tilde_on_non_equality_value_rejected(self):
        with pytest.raises(ValueError):
            Predicate("a", "x", approx_value=True, operator="!=")

    def test_attribute_tilde_allowed_with_operators(self):
        predicate = Predicate("temperature", 30, approx_attribute=True,
                              operator=">")
        assert predicate.approx_attribute


class TestEvaluateValue:
    def test_numeric_comparisons(self):
        assert Predicate("a", 30, operator=">").evaluate_value(31)
        assert not Predicate("a", 30, operator=">").evaluate_value(30)
        assert Predicate("a", 30, operator=">=").evaluate_value(30)
        assert Predicate("a", 30, operator="<").evaluate_value(29.5)
        assert Predicate("a", 30, operator="<=").evaluate_value(30)

    def test_numeric_strings_coerced(self):
        assert Predicate("a", 30, operator=">").evaluate_value("45")
        assert not Predicate("a", 30, operator=">").evaluate_value("cold")

    def test_not_equal_on_strings_normalized(self):
        predicate = Predicate("a", "occupied", operator="!=")
        assert predicate.evaluate_value("free")
        assert not predicate.evaluate_value(" Occupied ")

    def test_not_equal_on_numbers(self):
        assert Predicate("a", 3, operator="!=").evaluate_value(4)


class TestParsing:
    def test_parse_all_operators(self):
        sub = parse_subscription(
            "({env}, {temperature~ > 30, humidity <= 80, status != free,"
            " room= room 112})"
        )
        by_attr = {p.attribute: p for p in sub.predicates}
        assert by_attr["temperature"].operator == ">"
        assert by_attr["temperature"].approx_attribute
        assert by_attr["humidity"].operator == "<="
        assert by_attr["humidity"].value == 80
        assert by_attr["status"].operator == "!="
        assert by_attr["room"].operator == "="

    def test_ge_not_read_as_gt_then_eq(self):
        sub = parse_subscription("{reading >= 5}")
        assert sub.predicates[0].operator == ">="
        assert sub.predicates[0].value == 5

    def test_tilde_value_with_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_subscription("{status != free~}")

    def test_numeric_operator_with_term_rejected(self):
        with pytest.raises(ParseError):
            parse_subscription("{reading > hot}")

    def test_roundtrip(self):
        text = "({env}, {temperature~> 30, status!= free})"
        sub = parse_subscription(text)
        assert parse_subscription(str(sub)) == sub


class TestMatching:
    EVENT = Event.create(
        theme={"environment"},
        payload={"type": "high temperature event", "temperature": 34,
                 "status": "occupied", "room": "room 112"},
    )

    def matcher(self, space):
        return ThematicMatcher(ThematicMeasure(space))

    def test_threshold_subscription(self, space):
        sub = parse_subscription(
            "({environment}, {temperature > 30, room= room 112})"
        )
        assert self.matcher(space).matches(sub, self.EVENT)

    def test_threshold_fails_when_below(self, space):
        sub = parse_subscription("{temperature > 40}")
        assert not self.matcher(space).matches(sub, self.EVENT)

    def test_not_equal(self, space):
        sub = parse_subscription("{status != free}")
        assert self.matcher(space).matches(sub, self.EVENT)

    def test_semantic_attribute_with_numeric_operator(self, space):
        # 'thermal reading' is not the event's attribute name, but it is
        # related to 'temperature'; the value test is then numeric.
        sub = parse_subscription(
            "({environment}, {air temperature~ > 30})"
        )
        event = self.EVENT.with_theme({"environment", "weather monitoring"})
        assert self.matcher(space).score(sub, event) > 0.5

    def test_relax_preserves_operators(self):
        sub = parse_subscription("{temperature > 30, device= laptop}")
        relaxed = sub.relax()
        by_attr = {p.attribute: p for p in relaxed.predicates}
        assert by_attr["temperature"].operator == ">"
        assert not by_attr["temperature"].approx_value
        assert by_attr["temperature"].approx_attribute
        assert by_attr["device"].approx_value


class TestGroundTruthOperators:
    def test_is_relevant_honours_operators(self, tiny_workload):
        from repro.evaluation.groundtruth import is_relevant

        canon = tiny_workload.canonicalizer
        event = Event.create(payload={"temperature": 34, "room": "room 112"})
        above = Subscription.create(
            predicates=[Predicate("temperature", 30, operator=">")]
        )
        below = Subscription.create(
            predicates=[Predicate("temperature", 40, operator=">")]
        )
        assert is_relevant(above, event, canon)
        assert not is_relevant(below, event, canon)
