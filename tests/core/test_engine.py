"""Tests for the in-process subscription registry and dispatch."""

import pytest

from repro.core.engine import ThematicEventEngine
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event,"
    "  measurement unit: kilowatt hour, device: computer, office: room 112})"
)
MATCHING_SUB = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)
NON_MATCHING_SUB = parse_subscription(
    "({transport}, {type= parking space occupied event~, street= main street})"
)


@pytest.fixture()
def engine(space):
    return ThematicEventEngine(ThematicMatcher(ThematicMeasure(space)))


class TestEngine:
    def test_dispatches_to_matching_subscription(self, engine):
        received = []
        engine.subscribe(MATCHING_SUB, received.append)
        engine.subscribe(NON_MATCHING_SUB, lambda r: pytest.fail("wrong dispatch"))
        delivered = engine.process(EVENT)
        assert len(delivered) == 1
        assert received and received[0].event == EVENT

    def test_unsubscribe_stops_delivery(self, engine):
        received = []
        handle = engine.subscribe(MATCHING_SUB, received.append)
        assert engine.unsubscribe(handle)
        engine.process(EVENT)
        assert not received
        assert not engine.unsubscribe(handle)

    def test_subscription_count(self, engine):
        assert engine.subscription_count() == 0
        handle = engine.subscribe(MATCHING_SUB, lambda r: None)
        assert engine.subscription_count() == 1
        engine.unsubscribe(handle)
        assert engine.subscription_count() == 0

    def test_stats_track_work(self, engine):
        engine.subscribe(MATCHING_SUB, lambda r: None)
        engine.subscribe(NON_MATCHING_SUB, lambda r: None)
        engine.process(EVENT)
        assert engine.stats.events_processed == 1
        assert engine.stats.evaluations == 2
        assert engine.stats.deliveries == 1

    def test_results_in_registration_order(self, engine):
        order = []
        engine.subscribe(MATCHING_SUB, lambda r: order.append("first"))
        engine.subscribe(
            MATCHING_SUB.with_theme({"power"}), lambda r: order.append("second")
        )
        engine.process(EVENT)
        assert order == ["first", "second"]
