"""Unit and property tests for the surface syntax (Sections 3.3–3.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.language import (
    ParseError,
    format_event,
    format_subscription,
    parse_event,
    parse_subscription,
)

EVENT_TEXT = (
    "({energy, appliances, building},"
    " {type: increased energy consumption event,"
    "  measurement unit: kilowatt hour, device: computer, office: room 112})"
)
SUB_TEXT = (
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


class TestParseEvent:
    def test_paper_example(self):
        event = parse_event(EVENT_TEXT)
        assert event.theme == frozenset({"energy", "appliances", "building"})
        assert event.value("device") == "computer"
        assert len(event) == 4

    def test_without_theme(self):
        event = parse_event("{device: laptop}")
        assert event.theme == frozenset()

    def test_numeric_values(self):
        event = parse_event("{reading: 21.5, count: 3}")
        assert event.value("reading") == 21.5
        assert event.value("count") == 3

    def test_rejects_tilde(self):
        with pytest.raises(ParseError):
            parse_event("{device: laptop~}")

    def test_rejects_missing_separator(self):
        with pytest.raises(ParseError):
            parse_event("{device laptop}")

    def test_rejects_empty(self):
        with pytest.raises(ParseError):
            parse_event("{}")

    def test_rejects_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_event("{device: laptop")

    def test_rejects_three_groups(self):
        with pytest.raises(ParseError):
            parse_event("({a}, {b: c}, {d: e})")


class TestParseSubscription:
    def test_paper_example(self):
        sub = parse_subscription(SUB_TEXT)
        assert sub.theme == frozenset({"power", "computers"})
        by_attr = {p.attribute: p for p in sub.predicates}
        assert by_attr["type"].approx_value and not by_attr["type"].approx_attribute
        assert by_attr["device"].approx_attribute and by_attr["device"].approx_value
        assert not by_attr["office"].approx_value
        assert sub.degree_of_approximation() == 0.5

    def test_numeric_value(self):
        sub = parse_subscription("{count= 3}")
        assert sub.predicates[0].value == 3

    def test_rejects_approximated_number(self):
        with pytest.raises(ParseError):
            parse_subscription("{count= 3~}")

    def test_rejects_missing_equals(self):
        with pytest.raises(ParseError):
            parse_subscription("{device laptop}")

    def test_rejects_empty(self):
        with pytest.raises(ParseError):
            parse_subscription("({a}, {})")


class TestRoundTrip:
    def test_event_roundtrip(self):
        event = parse_event(EVENT_TEXT)
        assert parse_event(format_event(event)) == event

    def test_subscription_roundtrip(self):
        sub = parse_subscription(SUB_TEXT)
        assert parse_subscription(format_subscription(sub)) == sub

    terms = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=2, max_size=8
    )

    @given(
        st.dictionaries(terms, terms, min_size=1, max_size=5),
        st.sets(terms, max_size=3),
    )
    def test_generated_event_roundtrip(self, payload, theme):
        from repro.core.events import Event

        event = Event.create(theme=theme, payload=payload)
        assert parse_event(format_event(event)) == event

    @given(
        st.dictionaries(terms, terms, min_size=1, max_size=5),
        st.booleans(),
        st.booleans(),
    )
    def test_generated_subscription_roundtrip(self, payload, approx_a, approx_v):
        from repro.core.subscriptions import Predicate, Subscription

        sub = Subscription.create(
            predicates=[
                Predicate(a, v, approx_attribute=approx_a, approx_value=approx_v)
                for a, v in payload.items()
            ]
        )
        assert parse_subscription(format_subscription(sub)) == sub
