"""Unit tests for the event model (Section 3.3)."""

import pytest

from repro.core.events import AttributeValue, Event


class TestAttributeValue:
    def test_str(self):
        assert str(AttributeValue("device", "laptop")) == "device: laptop"

    def test_rejects_empty_attribute(self):
        with pytest.raises(ValueError):
            AttributeValue("  ", "x")


class TestEvent:
    def test_create_from_mapping(self):
        event = Event.create(
            theme={"energy"},
            payload={"type": "increased energy consumption event", "room": "room 112"},
        )
        assert event.value("type") == "increased energy consumption event"
        assert len(event) == 2

    def test_create_from_pairs_preserves_order(self):
        event = Event.create(payload=[("b", 1), ("a", 2)])
        assert event.attributes() == ("b", "a")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate attribute"):
            Event.create(payload=[("a", 1), ("A ", 2)])

    def test_value_lookup_is_normalized(self):
        event = Event.create(payload={"Measurement Unit": "kwh"})
        assert event.value("measurement unit") == "kwh"

    def test_missing_attribute_is_none(self):
        event = Event.create(payload={"a": 1})
        assert event.value("b") is None

    def test_numeric_values_allowed(self):
        event = Event.create(payload={"reading": 21.5})
        assert event.value("reading") == 21.5

    def test_terms_lists_attributes_and_string_values(self):
        event = Event.create(payload={"device": "laptop", "reading": 3})
        assert event.terms() == ("device", "laptop", "reading")

    def test_with_theme_replaces_theme_only(self):
        event = Event.create(theme={"a"}, payload={"x": 1})
        rethemed = event.with_theme({"b", "c"})
        assert rethemed.theme == frozenset({"b", "c"})
        assert rethemed.payload == event.payload

    def test_str_format_matches_paper(self):
        event = Event.create(theme={"energy"}, payload={"device": "laptop"})
        assert str(event) == "({energy}, {device: laptop})"

    def test_equality_by_value(self):
        a = Event.create(theme={"t"}, payload={"x": 1})
        b = Event.create(theme={"t"}, payload={"x": 1})
        assert a == b

    def test_immutable(self):
        event = Event.create(payload={"x": 1})
        with pytest.raises(AttributeError):
            event.theme = frozenset()  # type: ignore[misc]
