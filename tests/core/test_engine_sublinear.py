"""The sublinear-matching engine surface: anchor modes + score store.

Engine-level guarantees of the ANN prefilter and precomputed tier:

* ``prefilter_mode="ann"`` at ``ann_recall_target=1.0`` is bit-identical
  to ``"semantic"`` — same matches, same scores, same prune stats — for
  both :class:`TwoPhaseMatcher` and :class:`ThematicEventEngine`
  (hypothesis-driven over subscription/event samples);
* attaching a warmed score store never changes match results: a
  store-backed engine delivers exactly what the same engine without the
  store delivers, because the store was warmed on the same kernel float
  path its fallback scores with;
* every new config knob validates loudly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, ThematicEventEngine
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.core.prefilter import PREFILTER_MODES, TwoPhaseMatcher
from repro.semantics.measures import (
    CachedMeasure,
    ExactMeasure,
    ThematicMeasure,
)
from repro.semantics.persistence import save_score_store
from repro.semantics.warm import build_score_store

EVENTS = [
    parse_event(
        "({energy, office},"
        " {type: increased energy consumption event, device: computer,"
        "  office: room 112})"
    ),
    parse_event("({energy}, {device: laptop, reading: 42})"),
    parse_event("({office}, {type: door open event, office: room 7})"),
    parse_event("({street}, {type: traffic jam, street: main street})"),
]

SUBSCRIPTIONS = [
    parse_subscription(
        "({energy}, {type= increased energy usage event~, device~= laptop~})"
    ),
    parse_subscription("({office}, {office= room 112})"),
    parse_subscription("({energy}, {device~= computer~})"),
    parse_subscription("({street}, {type~= traffic incident~})"),
]

subscription_samples = st.lists(
    st.sampled_from(SUBSCRIPTIONS), min_size=1, max_size=4, unique_by=id
)
event_samples = st.lists(
    st.sampled_from(EVENTS), min_size=1, max_size=4, unique_by=id
)


def result_signature(results):
    """Order-preserving, comparison-friendly view of match results."""
    return [
        (id(r.subscription), id(r.event), r.score, r.mapping.correspondences)
        for r in results
    ]


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(CachedMeasure(ThematicMeasure(space)))


class TestTwoPhaseAnnParity:
    @settings(deadline=None, max_examples=15)
    @given(subs=subscription_samples, events=event_samples)
    def test_ann_at_recall_one_is_bit_identical(self, space, subs, events):
        semantic = TwoPhaseMatcher(
            ThematicMatcher(CachedMeasure(ThematicMeasure(space))), space
        )
        ann = TwoPhaseMatcher(
            ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
            space,
            prefilter_mode="ann",
            ann_recall_target=1.0,
        )
        for sub in subs:
            semantic.add(sub)
            ann.add(sub)
        for event in events:
            left = semantic.match_event(event)
            right = ann.match_event(event)
            assert [
                (sub_id, result.score) for sub_id, result in left
            ] == [(sub_id, result.score) for sub_id, result in right]
        assert semantic.stats.pruned_semantic_anchor == (
            ann.stats.pruned_semantic_anchor
        )

    def test_low_recall_never_invents_matches(self, space, matcher):
        semantic = TwoPhaseMatcher(matcher, space)
        ann = TwoPhaseMatcher(
            matcher, space, prefilter_mode="ann", ann_recall_target=0.25
        )
        for sub in SUBSCRIPTIONS:
            semantic.add(sub)
            ann.add(sub)
        for event in EVENTS:
            exact_ids = {sub_id for sub_id, _ in semantic.match_event(event)}
            ann_ids = {sub_id for sub_id, _ in ann.match_event(event)}
            assert ann_ids <= exact_ids


class TestEngineAnchorModes:
    def engine(self, space, **config):
        return ThematicEventEngine(
            ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
            EngineConfig(**config),
        )

    def deliveries(self, engine, events):
        for sub in SUBSCRIPTIONS:
            engine.subscribe(sub, lambda result: None)
        return [result_signature(engine.process(e)) for e in events]

    def test_ann_at_recall_one_matches_semantic_mode(self, space):
        semantic = self.deliveries(
            self.engine(space, prefilter_mode="semantic"), EVENTS
        )
        ann = self.deliveries(
            self.engine(
                space, prefilter_mode="ann", ann_recall_target=1.0
            ),
            EVENTS,
        )
        assert semantic == ann

    def test_batch_is_never_lossier_than_serial(self, space):
        serial = self.deliveries(
            self.engine(space, prefilter_mode="semantic"), EVENTS
        )
        batch_engine = self.engine(space, prefilter_mode="semantic")
        for sub in SUBSCRIPTIONS:
            batch_engine.subscribe(sub, lambda result: None)
        batched = [
            result_signature(block)
            for block in batch_engine.process_batch(EVENTS)
        ]
        for serial_block, batch_block in zip(serial, batched, strict=True):
            assert set(serial_block) <= set(batch_block)

    def test_anchor_modes_prune_counter_moves(self, space):
        engine = self.engine(space, prefilter_mode="semantic")
        for sub in SUBSCRIPTIONS:
            engine.subscribe(sub, lambda result: None)
        for event in EVENTS:
            engine.process(event)
        assert engine.stats.pruned > 0

    def test_unsubscribe_keeps_anchor_index_consistent(self, space):
        engine = self.engine(space, prefilter_mode="ann")
        handles = [
            engine.subscribe(sub, lambda result: None)
            for sub in SUBSCRIPTIONS
        ]
        engine.unsubscribe(handles[0])
        results = engine.process(EVENTS[0])
        assert all(
            r.subscription is not SUBSCRIPTIONS[0] for r in results
        )


class TestStoreBackedEngine:
    @pytest.fixture()
    def store_path(self, space, tmp_path):
        subs = SUBSCRIPTIONS
        events = EVENTS
        theme_pairs = sorted(
            {
                (tuple(sorted(s.theme)), tuple(sorted(e.theme)))
                for s in subs
                for e in events
            }
        )
        store = build_score_store(space, subs, events, theme_pairs)
        path = tmp_path / "scores.bin"
        save_score_store(store, path)
        return path

    def engines(self, space, store_path, warm_on_start=False):
        plain = ThematicEventEngine(
            ThematicMatcher(ThematicMeasure(space, vectorized=True)),
            EngineConfig(),
        )
        stored = ThematicEventEngine(
            ThematicMatcher(ThematicMeasure(space, vectorized=True)),
            EngineConfig(
                score_store_path=str(store_path),
                warm_on_start=warm_on_start,
            ),
        )
        return plain, stored

    @pytest.mark.parametrize("warm_on_start", [False, True])
    def test_warmed_store_never_changes_match_results(
        self, space, store_path, warm_on_start
    ):
        plain, stored = self.engines(space, store_path, warm_on_start)
        for engine in (plain, stored):
            for sub in SUBSCRIPTIONS:
                engine.subscribe(sub, lambda result: None)
        for event in EVENTS:
            assert result_signature(plain.process(event)) == (
                result_signature(stored.process(event))
            )

    def test_store_is_actually_consulted(self, space, store_path):
        _, stored = self.engines(space, store_path)
        for sub in SUBSCRIPTIONS:
            stored.subscribe(sub, lambda result: None)
        for event in EVENTS:
            stored.process(event)
        counters = stored.stats.registry.snapshot()["counters"]
        assert counters["score_store.hits"] > 0

    def test_store_exposed_on_engine(self, space, store_path):
        _, stored = self.engines(space, store_path)
        assert stored.score_store is not None


class TestConfigValidation:
    def test_unknown_prefilter_mode_rejected(self):
        matcher = ThematicMatcher(ExactMeasure())
        with pytest.raises(ValueError, match="unknown prefilter mode"):
            ThematicEventEngine(
                matcher, EngineConfig(prefilter_mode="fuzzy")
            )

    def test_modes_snapshot(self):
        assert PREFILTER_MODES == ("exact", "semantic", "ann")

    def test_warm_on_start_needs_a_store_path(self):
        matcher = ThematicMatcher(ExactMeasure())
        with pytest.raises(ValueError, match="score_store_path"):
            ThematicEventEngine(matcher, EngineConfig(warm_on_start=True))

    def test_semantic_mode_needs_a_space(self):
        matcher = ThematicMatcher(ExactMeasure())
        with pytest.raises(ValueError, match="semantic space"):
            ThematicEventEngine(
                matcher, EngineConfig(prefilter_mode="semantic")
            )

    def test_store_path_needs_a_thematic_matcher_family(self, tmp_path):
        class Opaque:
            threshold = 0.5

            def match_batch(self, subs, events, scores_only=False):
                return []

        with pytest.raises(ValueError, match="ThematicMatcher-family"):
            ThematicEventEngine(
                Opaque(),
                EngineConfig(score_store_path=str(tmp_path / "s.bin")),
            )

    def test_process_executor_rejects_sublinear_knobs(self, space):
        from repro.broker.config import BrokerConfig
        from repro.broker.sharded import ShardedBroker

        matcher = ThematicMatcher(ThematicMeasure(space, vectorized=True))
        with pytest.raises(ValueError, match="executor='process'"):
            ShardedBroker(
                matcher,
                BrokerConfig(
                    executor="process", prefilter_mode="semantic"
                ),
            )
