"""Unit and property tests for mappings and k-best assignment."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.mapping import k_best_assignments, top_k_mappings
from repro.core.similarity import build_similarity_matrix
from repro.core.subscriptions import Subscription


class FixedMeasure:
    def __init__(self, value):
        self.value = value

    def score(self, term_s, theme_s, term_e, theme_e):
        return self.value


def brute_force(scores, k):
    """Reference enumeration of all injective assignments."""
    n, m = scores.shape
    results = []
    for columns in itertools.permutations(range(m), n):
        cost = -sum(math.log(max(scores[i, c], 1e-12)) for i, c in enumerate(columns))
        results.append((tuple(columns), cost))
    results.sort(key=lambda item: item[1])
    return results[:k]


score_matrices = st.integers(1, 4).flatmap(
    lambda n: st.integers(n, 5).flatmap(
        lambda m: st.lists(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
                min_size=m, max_size=m,
            ),
            min_size=n, max_size=n,
        ).map(np.array)
    )
)


class TestKBestAssignments:
    def test_best_is_optimal_small_case(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        (best, _), = k_best_assignments(scores, 1)
        assert best == (0, 1)

    def test_assignment_injective(self):
        scores = np.array([[0.9, 0.9, 0.1], [0.9, 0.9, 0.1]])
        for assignment, _ in k_best_assignments(scores, 4):
            assert len(set(assignment)) == len(assignment)

    def test_more_predicates_than_tuples_is_infeasible(self):
        scores = np.ones((3, 2))
        assert k_best_assignments(scores, 1) == []

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            k_best_assignments(np.ones((1, 1)), 0)

    def test_returns_at_most_all_assignments(self):
        scores = np.random.default_rng(0).random((2, 3))
        results = k_best_assignments(scores, 100)
        assert len(results) == 6  # 3P2

    def test_results_sorted_by_cost(self):
        scores = np.random.default_rng(1).random((3, 4))
        results = k_best_assignments(scores, 10)
        costs = [cost for _, cost in results]
        assert costs == sorted(costs)

    def test_no_duplicate_assignments(self):
        scores = np.random.default_rng(2).random((3, 5))
        results = k_best_assignments(scores, 20)
        assignments = [a for a, _ in results]
        assert len(assignments) == len(set(assignments))

    @settings(max_examples=40, deadline=None)
    @given(score_matrices, st.integers(1, 6))
    def test_matches_brute_force(self, scores, k):
        ours = k_best_assignments(scores, k)
        reference = brute_force(scores, k)
        assert len(ours) == len(reference)
        for (_, our_cost), (_, ref_cost) in zip(ours, reference, strict=True):
            assert math.isclose(our_cost, ref_cost, rel_tol=1e-6, abs_tol=1e-9)


class TestTopKMappings:
    def make_matrix(self):
        sub = Subscription.create(
            approximate={"type": "x event", "device": "laptop"}
        )
        event = Event.create(
            payload={"type": "x event", "device": "computer", "room": "112"}
        )
        return build_similarity_matrix(sub, event, FixedMeasure(0.5))

    def test_top1_mapping_structure(self):
        mappings = top_k_mappings(self.make_matrix(), 1)
        assert len(mappings) == 1
        mapping = mappings[0]
        assert len(mapping.correspondences) == 2
        assert mapping.probability == 1.0  # only mapping enumerated

    def test_topk_probabilities_normalized(self):
        mappings = top_k_mappings(self.make_matrix(), 4)
        total = sum(m.probability for m in mappings)
        assert math.isclose(total, 1.0)
        assert mappings[0].probability == max(m.probability for m in mappings)

    def test_score_is_geometric_mean(self):
        mapping = top_k_mappings(self.make_matrix(), 1)[0]
        product = 1.0
        for corr in mapping.correspondences:
            product *= corr.score
        assert math.isclose(
            mapping.score, product ** (1 / len(mapping.correspondences))
        )

    def test_assignment_accessors(self):
        mapping = top_k_mappings(self.make_matrix(), 1)[0]
        assignment = mapping.assignment()
        for i, j in enumerate(assignment):
            assert mapping.tuple_for(i) == j
        with pytest.raises(KeyError):
            mapping.tuple_for(99)

    def test_describe_mentions_predicates(self):
        matrix = self.make_matrix()
        mapping = top_k_mappings(matrix, 1)[0]
        text = mapping.describe(matrix)
        assert "type" in text and "device" in text

    def test_empty_when_infeasible(self):
        sub = Subscription.create(approximate={"a": "x", "b": "y"})
        event = Event.create(payload={"a": "x"})
        matrix = build_similarity_matrix(sub, event, FixedMeasure(0.5))
        assert top_k_mappings(matrix, 3) == []
