"""Staged batch pipeline: exact parity with the per-pair path, plus the
engine-side dispatch behaviour (snapshot caching, prefilter, registry
stats) the pipeline feeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactMatcher
from repro.baselines.nonthematic import NonThematicMatcher
from repro.baselines.rewriting import RewritingMatcher
from repro.core.api import pairwise_match_batch
from repro.core.engine import EngineConfig, EngineStats, ThematicEventEngine
from repro.core.events import Event
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import MetricsRegistry
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import CachedMeasure, ThematicMeasure

# Mostly in-corpus terms (semantic structure to exploit) plus out-of-
# vocabulary ones (score 0.0 paths) and multi-word normalization cases.
TERMS = (
    "transport", "traffic", "road transport", "bus", "vehicle",
    "pollution", "air quality", "environment", "ozone", "smog",
    "Traffic ", "zzz unknown term",
)
ATTRS = ("vehicle", "pollutant", "sensor", "unit", "speed", "type")
TAGS = ("transport", "environment", "energy", "road transport")

themes = st.lists(st.sampled_from(TAGS), unique=True, max_size=2).map(frozenset)


@st.composite
def _predicate(draw, attribute: str) -> Predicate:
    kind = draw(st.integers(0, 3))
    if kind == 0:  # exact equality on a term
        return Predicate(attribute, draw(st.sampled_from(TERMS)))
    if kind == 1:  # fully approximated (the paper's 100% degree)
        return Predicate(
            attribute,
            draw(st.sampled_from(TERMS)),
            approx_attribute=True,
            approx_value=True,
        )
    if kind == 2:  # approximate attribute, exact value
        return Predicate(
            attribute, draw(st.sampled_from(TERMS)), approx_attribute=True
        )
    # Extension operator with a numeric comparison value.
    return Predicate(
        attribute,
        draw(st.integers(0, 5)),
        approx_attribute=draw(st.booleans()),
        operator=draw(st.sampled_from((">", ">=", "<", "<=", "!="))),
    )


@st.composite
def subscriptions(draw) -> Subscription:
    attrs = draw(
        st.lists(st.sampled_from(ATTRS), unique=True, min_size=1, max_size=3)
    )
    return Subscription(
        theme=draw(themes),
        predicates=tuple(draw(_predicate(attr)) for attr in attrs),
    )


@st.composite
def events(draw) -> Event:
    attrs = draw(
        st.lists(st.sampled_from(ATTRS), unique=True, min_size=1, max_size=4)
    )
    values = st.one_of(st.sampled_from(TERMS), st.integers(0, 5))
    return Event.create(
        theme=draw(themes),
        payload=[(attr, draw(values)) for attr in attrs],
    )


workloads = st.tuples(
    st.lists(subscriptions(), min_size=1, max_size=4),
    st.lists(events(), min_size=1, max_size=4),
)


def assert_batch_parity(engine, subs, evts):
    """Batch output must equal the per-pair reference bit for bit."""
    reference = pairwise_match_batch(engine, subs, evts)
    batch = engine.match_batch(subs, evts)
    assert batch.scores == reference.scores
    for i in range(len(subs)):
        for j in range(len(evts)):
            ours, ref = batch.result(i, j), reference.result(i, j)
            assert (ours is None) == (ref is None)
            if ours is not None and ref is not None:
                assert ours.score == ref.score
                assert ours.mapping.assignment() == ref.mapping.assignment()
                assert len(ours.alternatives) == len(ref.alternatives)
    scores_only = engine.match_batch(subs, evts, scores_only=True)
    assert scores_only.scores == reference.scores


@settings(max_examples=25, deadline=None)
@given(workload=workloads)
def test_thematic_batch_parity(space, workload):
    subs, evts = workload
    engine = ThematicMatcher(
        CachedMeasure(ThematicMeasure(space), RelatednessCache()), k=2
    )
    assert_batch_parity(engine, subs, evts)


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_uncalibrated_thematic_batch_parity(space, workload):
    subs, evts = workload
    engine = ThematicMatcher(
        ThematicMeasure(space), calibration=None, min_relatedness=0.42
    )
    assert_batch_parity(engine, subs, evts)


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_nonthematic_batch_parity(space, workload):
    subs, evts = workload
    assert_batch_parity(NonThematicMatcher(space), subs, evts)


@settings(max_examples=25, deadline=None)
@given(workload=workloads)
def test_exact_batch_parity(space, workload):
    subs, evts = workload
    assert_batch_parity(ExactMatcher(), subs, evts)


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_rewriting_batch_parity(thesaurus, workload):
    subs, evts = workload
    assert_batch_parity(RewritingMatcher(thesaurus), subs, evts)


def _fresh_matcher(space, k: int = 1, threshold: float = 0.5) -> ThematicMatcher:
    return ThematicMatcher(
        CachedMeasure(ThematicMeasure(space), RelatednessCache()),
        k=k,
        threshold=threshold,
    )


@settings(max_examples=20, deadline=None)
@given(
    workload=workloads,
    k=st.sampled_from((1, 2)),
    threshold=st.sampled_from((0.0, 0.5)),
)
def test_delivery_gated_batch_parity(space, workload, k, threshold):
    """Delivery-gated mode: full scores, results only for survivors.

    A survivor's result must be bit-identical to the full-mode result —
    same score, same chosen assignment, same probability mass, same
    alternatives — even though the gated path solves the assignment once
    per pair (and, for k=1, reuses the gate's own solve).
    """
    subs, evts = workload
    full = _fresh_matcher(space, k, threshold).match_batch(subs, evts)
    gated = _fresh_matcher(space, k, threshold).match_batch(
        subs, evts, deliver_threshold=threshold
    )
    _assert_gated_parity(full, gated, subs, evts, threshold)


def _assert_gated_parity(full, gated, subs, evts, threshold):
    assert gated.scores == full.scores
    for i in range(len(subs)):
        for j in range(len(evts)):
            full_result = full.result(i, j)
            gated_result = gated.result(i, j)
            deliverable = full_result is not None and full_result.is_match(
                threshold
            )
            assert (gated_result is not None) == deliverable
            if gated_result is not None:
                assert gated_result.score == full_result.score
                assert (
                    gated_result.mapping.assignment()
                    == full_result.mapping.assignment()
                )
                assert (
                    gated_result.mapping.probability
                    == full_result.mapping.probability
                )
                assert gated_result.mapping.weight == full_result.mapping.weight
                assert len(gated_result.alternatives) == len(
                    full_result.alternatives
                )


def _vectorized_matcher(space, k: int, threshold: float) -> ThematicMatcher:
    return ThematicMatcher(
        CachedMeasure(
            ThematicMeasure(space, vectorized=True), RelatednessCache()
        ),
        k=k,
        threshold=threshold,
    )


@settings(max_examples=20, deadline=None)
@given(
    workload=workloads,
    k=st.sampled_from((1, 2)),
    threshold=st.sampled_from((0.0, 0.5)),
)
def test_vectorized_delivery_gated_block_parity(space, workload, k, threshold):
    """The numpy block fill must equal the full kernel path bit for bit.

    With a vectorized measure, delivery-gated mode builds candidate
    matrices via per-group block gathers instead of the per-cell walk;
    every score, assignment, probability and alternatives count must be
    exactly equal to full mode over the same kernel — masks replicate
    the walk's short-circuits, so no float may differ.
    """
    subs, evts = workload
    full = _vectorized_matcher(space, k, threshold).match_batch(subs, evts)
    gated = _vectorized_matcher(space, k, threshold).match_batch(
        subs, evts, deliver_threshold=threshold
    )
    _assert_gated_parity(full, gated, subs, evts, threshold)


@settings(max_examples=10, deadline=None)
@given(first=workloads, second=workloads)
def test_vectorized_block_parity_with_warm_tables(space, first, second):
    """Second batch on the same matcher hits warm score tables; the
    block fill must still match a cold full-mode run exactly."""
    warm = _vectorized_matcher(space, 1, 0.5)
    for subs, evts in (first, second):
        gated = warm.match_batch(subs, evts, deliver_threshold=0.5)
        full = _vectorized_matcher(space, 1, 0.5).match_batch(subs, evts)
        _assert_gated_parity(full, gated, subs, evts, 0.5)


def test_deliver_threshold_conflicts_with_scores_only(space):
    import pytest

    matcher = _fresh_matcher(space)
    sub = parse_subscription("({transport}, {vehicle~= bus~})")
    event = parse_event("({transport}, {vehicle: traffic})")
    with pytest.raises(ValueError):
        matcher.match_batch(
            [sub], [event], scores_only=True, deliver_threshold=0.5
        )


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_process_batch_matches_sequential_process(space, workload):
    """Micro-batched dispatch == the same events processed one by one."""
    subs, evts = workload

    def run(consume):
        engine = ThematicEventEngine(_fresh_matcher(space))
        seen = []
        for index, sub in enumerate(subs):
            engine.subscribe(
                sub, lambda result, index=index: seen.append((index, result))
            )
        per_event = consume(engine)
        return engine, seen, per_event

    serial_engine, serial_seen, serial_lists = run(
        lambda engine: [engine.process(event) for event in evts]
    )
    batch_engine, batch_seen, batch_lists = run(
        lambda engine: engine.process_batch(list(evts))
    )

    def digest(results):
        return [
            (r.subscription, r.score, r.mapping.assignment(), len(r.alternatives))
            for r in results
        ]

    assert [digest(lst) for lst in batch_lists] == [
        digest(lst) for lst in serial_lists
    ]
    assert [i for i, _ in batch_seen] == [i for i, _ in serial_seen]
    assert batch_engine.stats.deliveries == serial_engine.stats.deliveries
    assert batch_engine.stats.evaluations == serial_engine.stats.evaluations


class TestPipelineStats:
    def test_dedup_and_prune_accounting(self, space):
        sub = parse_subscription("({transport}, {vehicle~= bus~})")
        anchored = parse_subscription("({transport}, {unit= microgram})")
        evts = [
            parse_event("({transport}, {vehicle: traffic})"),
            parse_event("({transport}, {vehicle: traffic, speed: 3})"),
        ]
        engine = ThematicMatcher(ThematicMeasure(space))
        batch = engine.match_batch([sub, anchored], evts, prune_zero=True)
        stats = batch.stats
        assert stats.pairs == 4
        # The anchored subscription's literal tuple is absent from both
        # events, so both of its pairs are settled without scoring.
        assert stats.pruned_anchor == 2
        # The same (vehicle~, traffic) term pairs repeat across events:
        # collected more than once, scored once.
        assert stats.term_pairs > stats.unique_term_pairs
        assert 0.0 < stats.dedup_ratio < 1.0

    def test_score_table_persists_across_batches(self, space):
        sub = parse_subscription("({transport}, {vehicle~= bus~})")
        event = parse_event("({transport}, {vehicle: traffic})")
        engine = ThematicMatcher(ThematicMeasure(space))
        first = engine.match_batch([sub], [event])
        again = engine.match_batch([sub], [event])
        assert first.stats.unique_term_pairs > 0
        assert again.stats.unique_term_pairs == 0  # all lookups table hits
        assert again.scores == first.scores


class TestEngineDispatch:
    SUB = "({transport}, {vehicle~= bus~})"
    ANCHORED = "({transport}, {unit= microgram})"
    EVENT = "({transport}, {vehicle: bus})"

    def _engine(self, space, config=None):
        matcher = ThematicMatcher(ThematicMeasure(space))
        return ThematicEventEngine(matcher, config)

    def test_snapshot_rebuilt_only_on_registration_change(self, space):
        engine = self._engine(space)
        engine.subscribe(parse_subscription(self.SUB), lambda result: None)
        first = engine._registrations()
        engine.process(parse_event(self.EVENT))
        assert engine._registrations() is first  # reused across events
        handle = engine.subscribe(parse_subscription(self.ANCHORED), lambda r: None)
        second = engine._registrations()
        assert second is not first
        engine.unsubscribe(handle)
        assert engine._registrations() is not second

    def test_prefilter_prunes_and_counts(self, space):
        engine = self._engine(space)
        engine.subscribe(parse_subscription(self.ANCHORED), lambda result: None)
        delivered = engine.process(parse_event(self.EVENT))
        assert delivered == []
        assert engine.stats.pruned == 1
        assert engine.stats.evaluations == 1  # counted despite the prune

    def test_prefilter_can_be_disabled(self, space):
        engine = self._engine(space, EngineConfig(prefilter=False))
        engine.subscribe(parse_subscription(self.ANCHORED), lambda result: None)
        engine.process(parse_event(self.EVENT))
        assert engine.stats.pruned == 0

    def test_dispatch_matches_per_pair_decisions(self, space):
        matcher = ThematicMatcher(ThematicMeasure(space))
        engine = ThematicEventEngine(matcher)
        subs = [parse_subscription(self.SUB), parse_subscription(self.ANCHORED)]
        seen = []
        for sub in subs:
            engine.subscribe(sub, seen.append)
        event = parse_event(self.EVENT)
        delivered = engine.process(event)
        expected = [sub for sub in subs if matcher.matches(sub, event)]
        assert [r.subscription for r in delivered] == expected
        assert [r.subscription for r in seen] == expected


class TestEngineStatsRegistry:
    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry)
        stats.inc("events_processed")
        stats.inc("deliveries", 3)
        assert stats.events_processed == 1
        assert stats.deliveries == 3
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.events_processed"] == 1
        assert snapshot["counters"]["engine.deliveries"] == 3

    def test_snapshot_is_json_ready(self):
        stats = EngineStats()
        stats.inc("evaluations", 2)
        assert stats.snapshot() == {
            "events_processed": 0,
            "evaluations": 2,
            "deliveries": 0,
            "pruned": 0,
        }

    def test_engine_metrics_snapshot(self, space):
        matcher = ThematicMatcher(ThematicMeasure(space))
        engine = ThematicEventEngine(matcher)
        engine.subscribe(
            parse_subscription("({transport}, {vehicle~= bus~})"),
            lambda result: None,
        )
        engine.process(parse_event("({transport}, {vehicle: bus})"))
        snapshot = engine.metrics_snapshot()
        assert snapshot["events_processed"] == 1
        assert snapshot["evaluations"] == 1
        assert snapshot["deliveries"] == 1
