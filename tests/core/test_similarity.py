"""Unit tests for the combined similarity matrix (Figure 4)."""

import math

import numpy as np
import pytest

from repro.core.events import Event
from repro.core.similarity import (
    Calibration,
    build_similarity_matrix,
    predicate_tuple_score,
)
from repro.core.subscriptions import Predicate, Subscription
from repro.semantics.measures import ExactMeasure


class FixedMeasure:
    """Measure returning a constant for non-identical terms."""

    def __init__(self, value):
        self.value = value

    def score(self, term_s, theme_s, term_e, theme_e):
        return self.value


class TestCalibration:
    def test_midpoint_maps_to_half(self):
        cal = Calibration(midpoint=0.5, temperature=0.1)
        assert math.isclose(cal.apply(0.5), 0.5)

    def test_monotone(self):
        cal = Calibration()
        values = [cal.apply(x / 10) for x in range(11)]
        assert values == sorted(values)

    def test_extremes_saturate(self):
        cal = Calibration(midpoint=0.5, temperature=0.01)
        assert cal.apply(1.0) > 0.999
        assert cal.apply(0.0) < 0.001

    def test_extreme_z_guarded(self):
        cal = Calibration(midpoint=0.5, temperature=1e-9)
        assert cal.apply(1.0) == 1.0
        assert cal.apply(0.0) == 0.0

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            Calibration(temperature=0.0)


class TestPredicateTupleScore:
    def args(self, predicate, attribute, value, measure, **kwargs):
        return predicate_tuple_score(
            predicate, attribute, value, measure, frozenset(), frozenset(), **kwargs
        )

    def test_exact_match_scores_one(self):
        assert self.args(Predicate("office", "room 112"), "office", "room 112",
                         ExactMeasure()) == 1.0

    def test_exact_attribute_mismatch_zeroes(self):
        assert self.args(Predicate("office", "room 112"), "room", "room 112",
                         FixedMeasure(0.9)) == 0.0

    def test_exact_value_mismatch_zeroes(self):
        assert self.args(Predicate("office", "room 112"), "office", "room 113",
                         FixedMeasure(0.9)) == 0.0

    def test_approximate_sides_multiply(self):
        predicate = Predicate("device", "laptop",
                              approx_attribute=True, approx_value=True)
        score = self.args(predicate, "appliance", "computer", FixedMeasure(0.5))
        assert math.isclose(score, 0.25)

    def test_identical_strings_short_circuit_even_when_approximated(self):
        predicate = Predicate("device", "laptop",
                              approx_attribute=True, approx_value=True)
        assert self.args(predicate, "device", "laptop", FixedMeasure(0.0)) == 1.0

    def test_numeric_values_compare_by_equality(self):
        predicate = Predicate("reading", 5, approx_attribute=True)
        assert self.args(predicate, "reading", 5, FixedMeasure(0.0)) == 1.0
        assert self.args(predicate, "reading", 6, FixedMeasure(1.0)) == 0.0

    def test_string_predicate_never_matches_numeric_value(self):
        predicate = Predicate("reading", "five", approx_value=True)
        assert self.args(predicate, "reading", 5, FixedMeasure(1.0)) == 0.0

    def test_min_relatedness_clamps(self):
        predicate = Predicate("device", "laptop",
                              approx_attribute=True, approx_value=True)
        assert self.args(predicate, "appliance", "computer",
                         FixedMeasure(0.3), min_relatedness=0.4) == 0.0

    def test_calibration_applied_to_measured_sides_only(self):
        cal = Calibration(midpoint=0.5, temperature=0.05)
        predicate = Predicate("device", "laptop", approx_value=True)
        score = self.args(predicate, "device", "computer",
                          FixedMeasure(0.6), calibration=cal)
        assert math.isclose(score, cal.apply(0.6))


class TestSimilarityMatrix:
    def test_shape_and_values(self):
        sub = Subscription.create(
            approximate={"type": "energy usage event", "device": "laptop"}
        )
        event = Event.create(
            payload={"type": "energy usage event", "device": "computer",
                     "office": "room 112"}
        )
        matrix = build_similarity_matrix(sub, event, FixedMeasure(0.5))
        assert matrix.shape == (2, 3)
        assert matrix.scores[0, 0] == 1.0  # identical type strings

    def test_row_probabilities_sum_to_one(self):
        sub = Subscription.create(approximate={"a": "x"})
        event = Event.create(payload={"a": "y", "b": "z"})
        matrix = build_similarity_matrix(sub, event, FixedMeasure(0.5))
        rows = matrix.row_probabilities()
        assert np.allclose(rows.sum(axis=1), 1.0)

    def test_all_zero_row_stays_zero(self):
        sub = Subscription.create(exact={"a": "x"})
        event = Event.create(payload={"b": "y"})
        matrix = build_similarity_matrix(sub, event, FixedMeasure(0.0))
        assert np.all(matrix.row_probabilities() == 0.0)
