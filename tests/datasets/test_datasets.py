"""Tests for the vocabulary pools (Table 3, BLUED, vehicles, locations)."""

from repro.datasets.appliances import ALL_DEVICES, APPLIANCES, COMPUTING_DEVICES
from repro.datasets.locations import CITIES, DESKS, FLOORS, ROOMS, ZONES, place_for_city
from repro.datasets.sensors import (
    SENSOR_CAPABILITIES,
    capability,
    capability_names,
)
from repro.datasets.vehicles import CAR_BRANDS, VEHICLE_KINDS


class TestSensors:
    def test_table3_count(self):
        # Table 3 lists exactly 22 capabilities.
        assert len(SENSOR_CAPABILITIES) == 22

    def test_paper_capabilities_present(self):
        names = capability_names()
        for expected in (
            "solar radiation", "particles", "speed", "temperature",
            "noise", "parking", "energy consumption", "cpu usage",
            "memory usage", "soil moisture tension",
        ):
            assert expected in names

    def test_lookup(self):
        assert capability("energy consumption").unit == "kilowatt hour"
        assert capability("energy consumption").indoor

    def test_capabilities_have_domains(self, thesaurus):
        for cap in SENSOR_CAPABILITIES:
            assert cap.domain in thesaurus.domains()

    def test_capability_names_in_thesaurus(self, thesaurus):
        # Every capability must be expandable for the evaluation.
        for cap in SENSOR_CAPABILITIES:
            assert cap.name in thesaurus, cap.name


class TestDevicePools:
    def test_all_devices_is_union(self):
        assert set(ALL_DEVICES) == set(APPLIANCES) | set(COMPUTING_DEVICES)

    def test_devices_in_thesaurus(self, thesaurus):
        for device in ALL_DEVICES:
            assert device in thesaurus, device


class TestVehicles:
    def test_pools_non_empty(self):
        assert len(CAR_BRANDS) >= 10
        assert "vehicle" in VEHICLE_KINDS

    def test_kinds_in_thesaurus(self, thesaurus):
        for kind in VEHICLE_KINDS:
            assert kind in thesaurus, kind


class TestLocations:
    def test_room_and_desk_format(self):
        assert all(r.startswith("room ") for r in ROOMS)
        assert all(d.startswith("desk ") for d in DESKS)

    def test_place_lookup(self):
        place = place_for_city("galway")
        assert place.country == "ireland"
        assert place.continent == "europe"

    def test_cities_in_thesaurus(self, thesaurus):
        for place in CITIES:
            assert place.city in thesaurus
            assert place.country in thesaurus
            assert place.continent in thesaurus

    def test_floors_and_zones_in_thesaurus(self, thesaurus):
        for floor in FLOORS:
            assert any(tok in thesaurus for tok in (floor, floor.split()[-1]))
        for zone in ZONES:
            assert zone in thesaurus or zone.split()[0] in thesaurus
