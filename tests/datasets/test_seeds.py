"""Tests for the seed-event generator (Section 5.2.1)."""

from repro.datasets.seeds import SeedConfig, event_type_for, generate_seed_events
from repro.datasets.sensors import SENSOR_CAPABILITIES, capability


class TestEventTypeFor:
    def test_with_qualifier(self):
        assert (
            event_type_for(capability("energy consumption"), "increased")
            == "increased energy consumption event"
        )

    def test_without_qualifier(self):
        assert event_type_for(capability("noise")) == "noise event"


class TestGeneration:
    def test_default_count_matches_paper(self):
        assert len(generate_seed_events()) == 166

    def test_deterministic(self):
        assert generate_seed_events(SeedConfig(count=20)) == generate_seed_events(
            SeedConfig(count=20)
        )

    def test_different_seeds_differ(self):
        a = generate_seed_events(SeedConfig(count=20, seed=1))
        b = generate_seed_events(SeedConfig(count=20, seed=2))
        assert a != b

    def test_every_capability_contributes(self):
        events = generate_seed_events(SeedConfig(count=44))
        types = " ".join(str(e.value("type")) for e in events)
        for cap in SENSOR_CAPABILITIES:
            if cap.name == "parking":
                assert "parking space" in types
            else:
                assert cap.name in types, cap.name

    def test_all_events_have_type(self):
        for event in generate_seed_events(SeedConfig(count=44)):
            assert event.value("type")

    def test_events_have_no_theme(self):
        for event in generate_seed_events(SeedConfig(count=10)):
            assert event.theme == frozenset()

    def test_indoor_events_have_device_and_room(self):
        events = generate_seed_events(SeedConfig(count=44))
        indoor = [e for e in events if e.value("device") is not None]
        assert indoor
        for event in indoor:
            assert event.value("room") is not None
            assert event.value("desk") is not None

    def test_geography_toggle(self):
        without = generate_seed_events(SeedConfig(count=10, include_geography=False))
        for event in without:
            assert event.value("city") is None

    def test_payload_sizes_within_model_bounds(self):
        # Expanded events must stay within "length up to 10 tuples".
        for event in generate_seed_events(SeedConfig(count=44)):
            assert 3 <= len(event) <= 10

    def test_parking_events_have_status(self):
        events = generate_seed_events(SeedConfig(count=44))
        parking = [
            e for e in events if "parking space" in str(e.value("type"))
        ]
        assert parking
        for event in parking:
            assert event.value("status") in ("occupied", "free")
