"""Tests for the command-line interface."""

from repro.cli import main

EVENT = (
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
SUBSCRIPTION = (
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


class TestMatch:
    def test_matching_pair_exits_zero(self, capsys):
        code = main(["match", "--subscription", SUBSCRIPTION, "--event", EVENT])
        out = capsys.readouterr().out
        assert code == 0
        assert "score=" in out
        assert "match: True" in out

    def test_non_matching_pair_exits_one(self, capsys):
        code = main(
            [
                "match",
                "--subscription",
                "({transport}, {type= parking space occupied event~, spot= 4})",
                "--event",
                EVENT,
            ]
        )
        assert code == 1

    def test_infeasible_event(self, capsys):
        code = main(
            [
                "match",
                "--subscription",
                SUBSCRIPTION,
                "--event",
                "({energy}, {type: increased energy consumption event})",
            ]
        )
        assert code == 1
        assert "no mapping" in capsys.readouterr().out


class TestRelatedness:
    def test_plain(self, capsys):
        code = main(["relatedness", "energy consumption", "electricity usage"])
        assert code == 0
        assert "non-thematic relatedness" in capsys.readouterr().out

    def test_with_themes(self, capsys):
        code = main(
            [
                "relatedness",
                "increased",
                "decreased",
                "--theme-a",
                "energy,power generation",
                "--theme-b",
                "energy,power generation",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "thematic relatedness" in out


class TestCorpus:
    def test_info(self, capsys):
        assert main(["corpus", "info"]) == 0
        out = capsys.readouterr().out
        assert "documents:" in out and "digest:" in out

    def test_save_and_verify(self, tmp_path, capsys):
        path = str(tmp_path / "snapshot.json")
        assert main(["corpus", "save", "--path", path]) == 0
        assert main(["corpus", "verify", "--path", path]) == 0
        assert "digest verified" in capsys.readouterr().out

    def test_save_without_path_errors(self):
        assert main(["corpus", "save"]) == 2


def test_evaluate_tiny(capsys):
    code = main(["evaluate", "--scale", "tiny"])
    out = capsys.readouterr().out
    assert code == 0
    assert "baseline" in out
    assert "thematic" in out
    assert "F1 delta" in out


class TestTracing:
    def test_match_trace_prints_stage_timings(self, capsys):
        code = main(
            ["match", "--subscription", SUBSCRIPTION, "--event", EVENT, "--trace"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-stage timings" in out
        assert "pipeline.match_batch" in out
        assert "pipeline.score" in out
        assert "matcher.top_k" in out

    def test_match_trace_writes_jsonl(self, capsys, tmp_path):
        import json

        sink = tmp_path / "trace.jsonl"
        code = main(
            [
                "match",
                "--subscription",
                SUBSCRIPTION,
                "--event",
                EVENT,
                "--trace",
                "--trace-out",
                str(sink),
            ]
        )
        assert code == 0
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert records
        assert all("span" in r and "duration_ms" in r for r in records)
        assert any(r["span"] == "pipeline.match_batch" for r in records)

    def test_match_without_trace_has_no_timings(self, capsys):
        code = main(["match", "--subscription", SUBSCRIPTION, "--event", EVENT])
        assert code == 0
        assert "per-stage timings" not in capsys.readouterr().out


class TestStats:
    def test_stats_prints_registry_snapshot(self, capsys):
        import json

        code = main(["stats", "--events", "5", "--subscriptions", "3"])
        out = capsys.readouterr().out
        assert code == 0
        start = out.index("{")
        snapshot = json.loads(out[start:])
        assert snapshot["counters"]["broker.published"] == 5
        assert snapshot["counters"]["broker.evaluations"] == 15
        assert "cache.relatedness_hit_rate" in snapshot["gauges"]
        assert "stage.pipeline.match_batch" in snapshot["histograms"]


class TestEvaluateFaults:
    def test_fault_plan_runs_and_accounts(self, capsys, tmp_path):
        import json

        plan = {
            "name": "cli-test",
            "callbacks": [
                {"subscriber": 0, "kind": "raise"},
                {"subscriber": 1, "kind": "flaky", "times": 2},
            ],
            "scorer": {"spike_seconds": 5.0, "every": 1},
            "degraded": {"latency_budget": 0.5, "cooldown": 1000000.0},
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        code = main(
            ["evaluate", "--scale", "tiny", "--faults", str(plan_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault plan: 'cli-test'" in out
        for kind in ("serial", "threaded", "sharded"):
            assert kind in out
        assert "no_loss=ok" in out
        assert "degraded: trips=" in out
        assert "fault-free matched deliveries:" in out

    def test_missing_plan_file_errors(self, tmp_path):
        import pytest

        with pytest.raises(FileNotFoundError):
            main(
                [
                    "evaluate",
                    "--scale",
                    "tiny",
                    "--faults",
                    str(tmp_path / "nope.json"),
                ]
            )


class TestBenchDiffGate:
    @staticmethod
    def _write(directory, bench, metrics):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{bench}.json").write_text(
            json.dumps(
                {"bench": bench, "scale": "tiny", "metrics": metrics}
            )
        )

    def test_gate_passes_when_all_artifacts_are_new(self, capsys, tmp_path):
        """New benches have nothing to regress against; the gate must not
        fail a PR for adding coverage."""
        (tmp_path / "base").mkdir()
        self._write(tmp_path / "cur", "kernel_scaling", {"eps": 10.0})
        code = main(
            [
                "bench", "diff",
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
                "--gate",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "only new artifacts" in out
        assert "kernel_scaling" in out

    def test_gate_still_fails_on_nothing_at_all(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        code = main(
            [
                "bench", "diff",
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
                "--gate",
            ]
        )
        assert code == 1

    def test_gate_still_fails_on_regression(self, tmp_path):
        self._write(tmp_path / "base", "fig9", {"mean_eps": 100.0})
        self._write(tmp_path / "cur", "fig9", {"mean_eps": 50.0})
        code = main(
            [
                "bench", "diff",
                "--baseline-dir", str(tmp_path / "base"),
                "--current-dir", str(tmp_path / "cur"),
                "--gate",
            ]
        )
        assert code == 1
