"""Run the doctests embedded in public-API docstrings."""

import doctest
import importlib

import pytest

# Resolved via importlib: package __init__ re-exports can shadow
# submodule attributes (repro.semantics.tokenize is also a function).
MODULE_NAMES = [
    "repro.core.events",
    "repro.core.language",
    "repro.datasets.seeds",
    "repro.semantics.tokenize",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    module = importlib.import_module(name)
    failures, tests = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert tests > 0, f"{name} has no doctests to run"
    assert failures == 0
