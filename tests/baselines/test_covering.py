"""Tests for SIENA-style subscription covering."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactMatcher, covers
from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription


def sub(*predicates):
    return Subscription(theme=frozenset(), predicates=tuple(predicates))


class TestEqualityCovering:
    def test_fewer_predicates_cover_more(self):
        general = sub(Predicate("type", "noise event"))
        specific = sub(
            Predicate("type", "noise event"), Predicate("city", "galway")
        )
        assert covers(general, specific)
        assert not covers(specific, general)

    def test_identical_subscriptions_cover_each_other(self):
        a = sub(Predicate("type", "noise event"))
        b = sub(Predicate("Type ", "Noise Event"))
        assert covers(a, b) and covers(b, a)

    def test_different_values_do_not_cover(self):
        assert not covers(
            sub(Predicate("city", "galway")), sub(Predicate("city", "dublin"))
        )


class TestOperatorCovering:
    def test_wider_threshold_covers_narrower(self):
        general = sub(Predicate("reading", 10, operator=">"))
        specific = sub(Predicate("reading", 20, operator=">"))
        assert covers(general, specific)
        assert not covers(specific, general)

    def test_gt_vs_ge_boundary(self):
        gt = sub(Predicate("reading", 10, operator=">"))
        ge = sub(Predicate("reading", 10, operator=">="))
        assert covers(ge, gt)       # (10,inf) ⊆ [10,inf)
        assert not covers(gt, ge)   # 10 itself matches ge but not gt

    def test_less_than_family(self):
        general = sub(Predicate("reading", 50, operator="<="))
        specific = sub(Predicate("reading", 20, operator="<"))
        assert covers(general, specific)

    def test_equality_implies_range(self):
        general = sub(Predicate("reading", 10, operator=">"))
        specific = sub(Predicate("reading", 15))
        assert covers(general, specific)
        assert not covers(general, sub(Predicate("reading", 5)))

    def test_not_equal(self):
        a = sub(Predicate("status", "free", operator="!="))
        b = sub(Predicate("status", "free", operator="!="))
        assert covers(a, b)
        assert not covers(a, sub(Predicate("status", "taken", operator="!=")))

    def test_range_never_covered_by_singleton_requirement(self):
        general = sub(Predicate("reading", 10))
        specific = sub(Predicate("reading", 5, operator=">"))
        assert not covers(general, specific)

    def test_opposite_directions_never_cover(self):
        assert not covers(
            sub(Predicate("reading", 10, operator=">")),
            sub(Predicate("reading", 5, operator="<")),
        )


class TestApproximatePredicates:
    def test_approximate_only_covered_by_identical(self):
        approx = Predicate("device", "laptop", approx_attribute=True,
                           approx_value=True)
        assert covers(sub(approx), sub(approx))
        assert not covers(
            sub(approx), sub(Predicate("device", "laptop"))
        )


class TestSoundness:
    """covers(G, S) must imply: every event matching S matches G."""

    values = st.one_of(
        st.integers(0, 20),
        st.sampled_from(["noise event", "galway", "free"]),
    )
    operators = st.sampled_from(["=", "!=", ">", ">=", "<", "<="])
    attrs = st.sampled_from(["a", "b"])

    @st.composite
    def subscriptions(draw):
        count = draw(st.integers(1, 2))
        predicates = {}
        for _ in range(count):
            attr = draw(TestSoundness.attrs)
            op = draw(TestSoundness.operators)
            value = draw(st.integers(0, 20)) if op in (">", ">=", "<", "<=") else draw(
                TestSoundness.values
            )
            predicates[attr] = Predicate(attr, value, operator=op)
        return Subscription(
            theme=frozenset(), predicates=tuple(predicates.values())
        )

    events = st.builds(
        lambda pairs: Event.create(payload=pairs),
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.one_of(st.integers(0, 20),
                      st.sampled_from(["noise event", "galway", "free"])),
            min_size=1,
            max_size=3,
        ),
    )

    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(subscriptions(), subscriptions(), events)
    def test_covering_is_sound(self, general, specific, event):
        if not covers(general, specific):
            return
        # Exact semantics incl. the operator extension.
        def matches(subscription):
            for predicate in subscription.predicates:
                value = event.value(predicate.attribute)
                if value is None:
                    return False
                if predicate.operator == "=":
                    matcher = ExactMatcher()
                    ok = matcher.matches(
                        Subscription(frozenset(), (predicate,)), event
                    )
                else:
                    ok = predicate.evaluate_value(value)
                if not ok:
                    return False
            return True

        if matches(specific):
            assert matches(general)
