"""Tests for the non-thematic approximate matcher (prior work [16])."""

from repro.baselines.nonthematic import NonThematicMatcher, make_nonthematic_matcher
from repro.core.language import parse_event, parse_subscription
from repro.semantics.measures import CachedMeasure

EVENT = parse_event(
    "({energy}, {type: increased energy consumption event, device: computer,"
    " office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power}, {type= increased energy usage event~, device~= laptop~,"
    " office= room 112})"
)


class TestNonThematicMatcher:
    def test_matches_synonym_event(self, space):
        assert NonThematicMatcher(space).matches(SUBSCRIPTION, EVENT)

    def test_themes_are_ignored(self, space):
        matcher = NonThematicMatcher(space)
        no_theme = matcher.score(
            SUBSCRIPTION.with_theme(()), EVENT.with_theme(())
        )
        themed = matcher.score(SUBSCRIPTION, EVENT)
        assert no_theme == themed

    def test_cached_by_default(self, space):
        matcher = NonThematicMatcher(space)
        assert isinstance(matcher.measure, CachedMeasure)
        matcher.score(SUBSCRIPTION, EVENT)
        assert matcher.measure.cache.misses > 0

    def test_uncached_variant(self, space):
        matcher = NonThematicMatcher(space, cached=False)
        assert not isinstance(matcher.measure, CachedMeasure)
        assert matcher.matches(SUBSCRIPTION, EVENT)

    def test_factory(self, space):
        matcher = make_nonthematic_matcher(space, k=2)
        assert matcher.k == 2
