"""Tests for the concept-based query-rewriting baseline."""

from repro.baselines.rewriting import RewritingMatcher, rewrite_subscription
from repro.core.events import Event
from repro.core.subscriptions import Subscription


class TestRewriteSubscription:
    def test_original_first(self, thesaurus):
        sub = Subscription.create(approximate={"device": "computer"})
        rewrites = rewrite_subscription(sub, thesaurus)
        assert rewrites[0].predicates[0].value == "computer"

    def test_rewrites_are_exact(self, thesaurus):
        sub = Subscription.create(approximate={"device": "computer"})
        for rewrite in rewrite_subscription(sub, thesaurus):
            assert rewrite.degree_of_approximation() == 0.0

    def test_covers_synonyms(self, thesaurus):
        sub = Subscription.create(approximate={"device": "computer"})
        values = {
            r.predicates[0].value for r in rewrite_subscription(sub, thesaurus)
        }
        assert "laptop" in values

    def test_exact_predicates_untouched(self, thesaurus):
        sub = Subscription.create(exact={"office": "room 112"})
        rewrites = rewrite_subscription(sub, thesaurus)
        assert len(rewrites) == 1

    def test_cap_respected(self, thesaurus):
        sub = Subscription.create(
            approximate={"type": "increased energy consumption event",
                         "device": "computer"}
        )
        rewrites = rewrite_subscription(sub, thesaurus, max_rewrites=7)
        assert len(rewrites) == 7

    def test_combinatorial_blowup_documented(self, thesaurus):
        # The paper: 94 approximate subs ~ 48,000 exact ones. Even one
        # two-predicate approximate subscription explodes to dozens.
        sub = Subscription.create(
            approximate={"type": "increased energy consumption event",
                         "device": "computer"}
        )
        rewrites = rewrite_subscription(sub, thesaurus, max_rewrites=100000)
        assert len(rewrites) > 50


class TestRewritingMatcher:
    def test_matches_synonym_event(self, thesaurus):
        matcher = RewritingMatcher(thesaurus)
        sub = Subscription.create(approximate={"device": "computer"})
        event = Event.create(payload={"device": "laptop"})
        assert matcher.matches(sub, event)
        assert matcher.score(sub, event) == 1.0

    def test_rejects_unrelated_event(self, thesaurus):
        matcher = RewritingMatcher(thesaurus)
        sub = Subscription.create(approximate={"device": "computer"})
        event = Event.create(payload={"device": "rainfall"})
        assert not matcher.matches(sub, event)

    def test_rewrites_cached(self, thesaurus):
        matcher = RewritingMatcher(thesaurus)
        sub = Subscription.create(approximate={"device": "computer"})
        assert matcher.rewrites(sub) is matcher.rewrites(sub)

    def test_cap_costs_recall(self, thesaurus):
        # With a tiny rewrite budget the matcher misses synonyms — the
        # trade-off the paper attributes to the rewriting approach.
        generous = RewritingMatcher(thesaurus)
        capped = RewritingMatcher(thesaurus, max_rewrites=1)
        sub = Subscription.create(approximate={"device": "computer"})
        event = Event.create(payload={"device": "laptop"})
        assert generous.matches(sub, event)
        assert not capped.matches(sub, event)

    def test_index_for_builds_counting_index(self, thesaurus):
        matcher = RewritingMatcher(thesaurus)
        subs = [
            Subscription.create(approximate={"device": "computer"}),
            Subscription.create(approximate={"status": "occupied"}),
        ]
        index = matcher.index_for(subs)
        event = Event.create(payload={"device": "laptop"})
        assert index.match(event)
