"""Tests for the content-based exact matcher and counting index."""

from repro.baselines.exact import CountingIndex, ExactMatcher
from repro.core.events import Event
from repro.core.subscriptions import Subscription

EVENT = Event.create(
    payload={
        "type": "increased energy consumption event",
        "device": "computer",
        "office": "room 112",
    }
)


class TestExactMatcher:
    def test_full_match(self):
        sub = Subscription.create(
            exact={"type": "increased energy consumption event", "office": "room 112"}
        )
        assert ExactMatcher().matches(sub, EVENT)
        assert ExactMatcher().score(sub, EVENT) == 1.0

    def test_value_mismatch(self):
        sub = Subscription.create(exact={"device": "laptop"})
        assert not ExactMatcher().matches(sub, EVENT)
        assert ExactMatcher().score(sub, EVENT) == 0.0

    def test_missing_attribute(self):
        sub = Subscription.create(exact={"floor": "ground floor"})
        assert not ExactMatcher().matches(sub, EVENT)

    def test_normalized_comparison(self):
        sub = Subscription.create(exact={"Device ": "Computer"})
        assert ExactMatcher().matches(sub, EVENT)

    def test_tilde_is_ignored(self):
        sub = Subscription.create(approximate={"device": "laptop"})
        assert not ExactMatcher().matches(sub, EVENT)

    def test_numeric_values(self):
        event = Event.create(payload={"count": 3})
        assert ExactMatcher().matches(
            Subscription.create(exact={"count": 3}), event
        )
        assert not ExactMatcher().matches(
            Subscription.create(exact={"count": 4}), event
        )


class TestCountingIndex:
    def make_index(self):
        index = CountingIndex()
        ids = {
            "energy": index.add(
                Subscription.create(
                    exact={
                        "type": "increased energy consumption event",
                        "device": "computer",
                    }
                )
            ),
            "office": index.add(Subscription.create(exact={"office": "room 112"})),
            "parking": index.add(
                Subscription.create(exact={"type": "parking space occupied event"})
            ),
        }
        return index, ids

    def test_match_returns_satisfied_only(self):
        index, ids = self.make_index()
        assert index.match(EVENT) == sorted([ids["energy"], ids["office"]])

    def test_partial_hits_do_not_match(self):
        index, ids = self.make_index()
        event = Event.create(payload={"device": "computer"})
        assert index.match(event) == []

    def test_remove(self):
        index, ids = self.make_index()
        assert index.remove(ids["energy"])
        assert ids["energy"] not in index.match(EVENT)
        assert not index.remove(ids["energy"])
        assert len(index) == 2

    def test_subscription_accessor(self):
        index, ids = self.make_index()
        assert index.subscription(ids["office"]).predicates[0].value == "room 112"

    def test_agrees_with_exact_matcher(self, tiny_workload):
        matcher = ExactMatcher()
        index = CountingIndex()
        subs = tiny_workload.subscriptions.exact
        for sub in subs:
            index.add(sub)
        for event in tiny_workload.events[:60]:
            via_index = set(index.match(event))
            via_matcher = {
                i for i, sub in enumerate(subs) if matcher.matches(sub, event)
            }
            assert via_index == via_matcher
