"""Tests for the multi-broker overlay."""

import networkx as nx
import pytest

from repro.broker.overlay import BrokerOverlay
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


def make_overlay(space, graph=None, **kwargs):
    graph = graph if graph is not None else nx.path_graph(4)
    return BrokerOverlay(
        graph,
        lambda: ThematicMatcher(ThematicMeasure(space)),
        **kwargs,
    )


class TestOverlay:
    def test_every_graph_node_becomes_a_broker(self, space):
        overlay = make_overlay(space)
        assert len(overlay.nodes()) == 4

    def test_empty_graph_rejected(self, space):
        with pytest.raises(ValueError):
            make_overlay(space, graph=nx.Graph())

    def test_flood_reaches_remote_subscriber(self, space):
        overlay = make_overlay(space)
        handle = overlay.subscribe(3, SUBSCRIPTION)
        delivered = overlay.publish(0, EVENT)
        assert delivered == 1
        assert len(handle.inbox) == 1

    def test_ttl_scopes_propagation(self, space):
        overlay = make_overlay(space)
        near = overlay.subscribe(1, SUBSCRIPTION)
        far = overlay.subscribe(3, SUBSCRIPTION)
        overlay.publish(0, EVENT, ttl=1)
        assert len(near.inbox) == 1
        assert len(far.inbox) == 0

    def test_cycle_deduplication(self, space):
        overlay = make_overlay(space, graph=nx.cycle_graph(4))
        handle = overlay.subscribe(2, SUBSCRIPTION)
        overlay.publish(0, EVENT)
        assert len(handle.inbox) == 1
        assert overlay.metrics.duplicate_suppressions > 0

    def test_unknown_node_rejected(self, space):
        overlay = make_overlay(space)
        with pytest.raises(KeyError):
            overlay.publish("nope", EVENT)

    def test_metrics_accumulate(self, space):
        overlay = make_overlay(space)
        overlay.subscribe(0, SUBSCRIPTION)
        overlay.publish(0, EVENT)
        assert overlay.metrics.injected == 1
        assert overlay.metrics.hops == 3  # path graph fully flooded
        assert overlay.metrics.deliveries == 1

    def test_total_subscribers(self, space):
        overlay = make_overlay(space)
        overlay.subscribe(0, SUBSCRIPTION)
        overlay.subscribe(2, SUBSCRIPTION)
        assert overlay.total_subscribers() == 2

    def test_broker_accessor(self, space):
        overlay = make_overlay(space)
        assert overlay.broker(0).subscriber_count() == 0
