"""Tests for the deterministic fault-injection harness itself.

The harness is trusted by the stress suite, so its own semantics —
plan serialization, wrapper behavior, clock coupling — get direct
coverage here.
"""

import pytest

from repro.broker.faults import (
    CallbackFault,
    FaultInjector,
    FaultPlan,
    FaultyCallbackError,
    ScorerFault,
)
from repro.core.degrade import DegradedPolicy
from repro.obs.clock import FakeClock


class TestFaultSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CallbackFault(subscriber=0, kind="explode")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"times": -1},
            {"hang_seconds": -0.5},
        ],
    )
    def test_negative_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CallbackFault(subscriber=0, kind="raise", **kwargs)

    def test_flaky_zero_times_promoted_to_one(self):
        fault = CallbackFault(subscriber=0, kind="flaky", times=0)
        assert fault.times == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spike_seconds": -1.0},
            {"spike_seconds": 1.0, "every": 0},
            {"spike_seconds": 1.0, "start": -1},
        ],
    )
    def test_scorer_fault_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScorerFault(**kwargs)


class TestPlanSerialization:
    def full_plan(self):
        return FaultPlan(
            name="everything",
            callbacks=(
                CallbackFault(subscriber=0, kind="raise"),
                CallbackFault(subscriber=1, kind="flaky", times=2),
                CallbackFault(subscriber=2, kind="hang", hang_seconds=5.0),
            ),
            scorer=ScorerFault(spike_seconds=2.0, every=3, start=1),
            degraded=DegradedPolicy(
                latency_budget=0.5, cooldown=2.0, trip_after=2
            ),
        )

    def test_json_round_trip(self):
        plan = self.full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_minimal_plan_round_trips(self):
        plan = FaultPlan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"name": "x", "surprise": 1})

    def test_dict_omits_absent_sections(self):
        plan = FaultPlan(name="bare").to_dict()
        assert plan == {"name": "bare"}


class TestCallbackWrapping:
    def test_unfaulted_subscriber_passes_through_unchanged(self):
        injector = FaultInjector(FaultPlan(), clock=FakeClock())
        inner = lambda delivery: None  # noqa: E731
        assert injector.wrap_callback(0, inner) is inner
        assert injector.wrap_callback(0) is None

    def test_raise_fault_raises_forever(self):
        plan = FaultPlan(callbacks=(CallbackFault(subscriber=0, kind="raise"),))
        wrapped = FaultInjector(plan, clock=FakeClock()).wrap_callback(0)
        for _ in range(5):
            with pytest.raises(FaultyCallbackError):
                wrapped(None)

    def test_raise_fault_with_times_recovers(self):
        plan = FaultPlan(
            callbacks=(CallbackFault(subscriber=0, kind="raise", times=2),)
        )
        seen = []
        wrapped = FaultInjector(plan, clock=FakeClock()).wrap_callback(
            0, seen.append
        )
        for _ in range(2):
            with pytest.raises(FaultyCallbackError):
                wrapped("d")
        wrapped("d")
        assert seen == ["d"]

    def test_flaky_fault_fails_then_calls_inner(self):
        plan = FaultPlan(
            callbacks=(CallbackFault(subscriber=3, kind="flaky", times=1),)
        )
        seen = []
        wrapped = FaultInjector(plan, clock=FakeClock()).wrap_callback(
            3, seen.append
        )
        with pytest.raises(FaultyCallbackError):
            wrapped("first")
        wrapped("second")
        assert seen == ["second"]

    def test_hang_fault_advances_clock_then_succeeds(self):
        clock = FakeClock()
        plan = FaultPlan(
            callbacks=(
                CallbackFault(
                    subscriber=0, kind="hang", times=1, hang_seconds=30.0
                ),
            )
        )
        seen = []
        wrapped = FaultInjector(plan, clock=clock).wrap_callback(0, seen.append)
        wrapped("d")
        assert clock.monotonic() == pytest.approx(30.0)
        wrapped("d")  # second call: fault budget spent, no more stall
        assert clock.monotonic() == pytest.approx(30.0)
        assert seen == ["d", "d"]

    def test_injectors_do_not_share_fault_state(self):
        plan = FaultPlan(
            callbacks=(CallbackFault(subscriber=0, kind="flaky", times=1),)
        )
        clock = FakeClock()
        first = FaultInjector(plan, clock=clock).wrap_callback(0)
        second = FaultInjector(plan, clock=clock).wrap_callback(0)
        with pytest.raises(FaultyCallbackError):
            first(None)
        with pytest.raises(FaultyCallbackError):
            second(None)  # fresh counter: still faults


class FixedMeasure:
    """Minimal measure double: constant score plus a forwarded extra."""

    space = "the-space"

    def score(self, term_s, theme_s, term_e, theme_e):
        return 0.5


class TestMeasureWrapping:
    def test_no_scorer_fault_returns_measure_unchanged(self):
        measure = FixedMeasure()
        injector = FaultInjector(FaultPlan(), clock=FakeClock())
        assert injector.wrap_measure(measure) is measure

    def test_spike_schedule(self):
        clock = FakeClock()
        plan = FaultPlan(scorer=ScorerFault(spike_seconds=1.0, every=2, start=1))
        wrapped = FaultInjector(plan, clock=clock).wrap_measure(FixedMeasure())
        stamps = []
        for _ in range(5):
            before = clock.monotonic()
            assert wrapped.score(None, None, None, None) == 0.5
            stamps.append(clock.monotonic() - before)
        # Calls 1 and 3 (0-based) spike: start=1, every=2.
        assert stamps == [0.0, 1.0, 0.0, 1.0, 0.0]

    def test_extra_attributes_forwarded(self):
        wrapped = FaultInjector(
            FaultPlan(scorer=ScorerFault(spike_seconds=1.0)), clock=FakeClock()
        ).wrap_measure(FixedMeasure())
        assert wrapped.space == "the-space"
