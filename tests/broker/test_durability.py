"""Durable broker state: WAL framing, corruption tolerance, recovery.

The crash-anywhere property suite lives in
``tests/broker/test_recovery_stress.py``; this file pins the concrete
mechanisms it relies on — frame round-trips, torn-tail and bit-flip
containment, snapshot + delta replay, the effectively-once idempotency
barrier, and stable subscriber keys.
"""

import json
import zlib
from pathlib import Path

import pytest

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.durability import (
    SEGMENT_HEADER,
    DurabilityPolicy,
    SimulatedCrash,
    WriteAheadLog,
    read_wal_segment,
)
from repro.broker.reliability import DeliveryPolicy
from repro.core.engine import stable_subscriber_key
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.obs import MetricsRegistry
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
MATCHING = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)
NON_MATCHING = parse_subscription(
    "({transport}, {type= parking space occupied event~, street= main street})"
)


def make_broker(space, directory, **policy_kwargs):
    config = BrokerConfig(
        durability=DurabilityPolicy(directory=str(directory), **policy_kwargs)
    )
    return ThematicBroker(ThematicMatcher(ThematicMeasure(space)), config)


def wal_files(directory):
    return sorted(Path(directory).glob("wal-*.log"))


class TestPolicyValidation:
    def test_rejects_empty_directory(self):
        with pytest.raises(ValueError):
            DurabilityPolicy(directory="")

    def test_rejects_unknown_fsync_mode(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityPolicy(directory=str(tmp_path), fsync="sometimes")

    def test_rejects_bad_batch_size(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityPolicy(directory=str(tmp_path), fsync_batch_records=0)

    def test_rejects_negative_snapshot_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityPolicy(directory=str(tmp_path), snapshot_every=-1)


class TestWalFraming:
    def test_records_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        path = wal.open_segment(0)
        records = [{"t": "done", "seq": n} for n in range(5)]
        for record in records:
            wal.append(record)
        wal.close()
        scan = read_wal_segment(path)
        assert scan.records == records
        assert not scan.truncated_tail
        assert scan.corrupt_records == 0
        assert not scan.bad_header
        assert scan.valid_bytes == path.stat().st_size
        # Offsets are frame starts: monotonically increasing, first one
        # right after the segment header.
        assert scan.offsets[0] == len(SEGMENT_HEADER)
        assert scan.offsets == sorted(scan.offsets)

    def test_offset_counts_header_and_frames(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        path = wal.open_segment(0)
        wal.append({"t": "done", "seq": 0})
        wal.close()
        assert wal.offset == path.stat().st_size

    def test_wrong_header_reads_nothing(self, tmp_path):
        path = tmp_path / "wal-00000000.log"
        path.write_bytes(b"NOTAWAL\n" + b"garbage")
        scan = read_wal_segment(path)
        assert scan.bad_header
        assert scan.records == []

    def test_fsync_always_syncs_every_record(self, tmp_path):
        counter = MetricsRegistry().counter("durability.fsyncs")
        wal = WriteAheadLog(tmp_path, fsync="always", fsync_counter=counter)
        wal.open_segment(0)
        for n in range(3):
            wal.append({"t": "done", "seq": n})
        assert counter.value == 3

    def test_fsync_batch_syncs_on_the_batch_boundary(self, tmp_path):
        counter = MetricsRegistry().counter("durability.fsyncs")
        wal = WriteAheadLog(
            tmp_path, fsync="batch", fsync_batch_records=4, fsync_counter=counter
        )
        wal.open_segment(0)
        for n in range(7):
            wal.append({"t": "done", "seq": n})
        assert counter.value == 1

    def test_armed_kill_crashes_and_stays_dead(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        wal.open_segment(0)
        wal.arm_kill(at=0, mode="before")
        with pytest.raises(SimulatedCrash):
            wal.append({"t": "done", "seq": 0})
        assert wal.crashed
        with pytest.raises(SimulatedCrash):
            wal.append({"t": "done", "seq": 1})


class TestCorruptionTolerance:
    def journal(self, tmp_path, n=6):
        """A closed single-segment journal of ``n`` records."""
        wal = WriteAheadLog(tmp_path, fsync="never")
        path = wal.open_segment(0)
        records = [{"seq": k, "t": "done"} for k in range(n)]
        for record in records:
            wal.append(record)
        wal.close()
        scan = read_wal_segment(path)
        return path, records, scan.offsets

    def test_truncated_tail_recovers_to_last_complete_record(self, tmp_path):
        path, records, offsets = self.journal(tmp_path)
        data = path.read_bytes()
        # Cut mid-way through the last frame: a torn final write.
        path.write_bytes(data[: offsets[-1] + 3])
        scan = read_wal_segment(path)
        assert scan.records == records[:-1]
        assert scan.truncated_tail
        assert scan.corrupt_records == 0
        assert scan.valid_bytes == offsets[-1]

    def test_bit_flip_fails_crc_and_poisons_the_suffix(self, tmp_path):
        path, records, offsets = self.journal(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip one payload bit inside record 2 (past its 8-byte frame
        # prefix). Records 0-1 replay; 2 and everything after do not.
        data[offsets[2] + 10] ^= 0x40
        path.write_bytes(bytes(data))
        scan = read_wal_segment(path)
        assert scan.records == records[:2]
        assert scan.corrupt_records == 1
        assert not scan.truncated_tail

    def test_broker_recovery_reports_torn_tail(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.publish(EVENT)
        broker.close()
        segment = wal_files(tmp_path)[-1]
        segment.write_bytes(segment.read_bytes()[:-3])
        reborn = make_broker(space, tmp_path)
        report = reborn.durability.report
        assert report is not None
        assert report.truncated_tail
        assert report.corrupt_records == 0
        # The torn record was the trailing `done`; the event it covered
        # comes back as in-flight, ready for recover_pending.
        assert report.restored_subscriptions == 1
        assert reborn.durability.state.pending
        reborn.close()

    def test_broker_recovery_reports_corruption_not_replays_it(
        self, space, tmp_path
    ):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.subscribe(NON_MATCHING)
        broker.close()
        segment = wal_files(tmp_path)[-1]
        scan = read_wal_segment(segment)
        data = bytearray(segment.read_bytes())
        data[scan.offsets[1] + 10] ^= 0x01
        segment.write_bytes(bytes(data))
        reborn = make_broker(space, tmp_path)
        report = reborn.durability.report
        assert report is not None
        assert report.corrupt_records == 1
        # Only the first registration survives; the corrupt one is
        # surfaced in the report, never silently interpreted.
        assert report.restored_subscriptions == 1
        corrupt = reborn.metrics.registry.counter("durability.corrupt_records")
        assert corrupt.value == 1
        reborn.close()

    def test_stale_snapshot_plus_longer_log_replays_the_delta(
        self, space, tmp_path
    ):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.durability.snapshot_now()
        broker.publish(EVENT)
        broker.publish(EVENT)
        broker.close()
        reborn = make_broker(space, tmp_path)
        report = reborn.durability.report
        assert report is not None
        assert report.snapshot_generation is not None
        # The subscription is inside the snapshot; only the journal
        # records written after it (pub/ack/done per publish) replay.
        assert report.records_replayed >= 2
        assert report.restored_subscriptions == 1
        assert reborn.durability.state.next_sequence == 2
        reborn.close()

    def test_invalid_snapshot_file_is_skipped(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.durability.snapshot_now()
        broker.close()
        newest = sorted(tmp_path.glob("snap-*.json"))[-1]
        document = json.loads(newest.read_text())
        document["state"]["next_sequence"] = 999  # breaks the CRC
        newest.write_text(json.dumps(document))
        reborn = make_broker(space, tmp_path)
        # The doctored snapshot fails its CRC; recovery falls back to
        # an older valid one (or pure log replay) and still restores.
        assert reborn.subscriber_count() == 1
        assert reborn.durability.state.next_sequence == 0
        reborn.close()


class TestBrokerRecovery:
    def test_restart_restores_registrations_inboxes_and_sequence(
        self, space, tmp_path
    ):
        broker = make_broker(space, tmp_path)
        kept = broker.subscribe(MATCHING)
        broker.subscribe(NON_MATCHING)
        broker.publish(EVENT)
        broker.close()
        assert len(kept.drain()) == 1  # drained pre-crash: journaled

        reborn = make_broker(space, tmp_path)
        assert set(reborn.recovered) == {0, 1}
        assert reborn.recovered[0].key == kept.key
        assert reborn._sequence == 1
        # The drain above was journaled, so the restored inbox is empty
        # — recovery does not resurrect consumed-and-drained deliveries.
        assert reborn.recovered[0].drain() == []
        reborn.publish(EVENT)
        deliveries = reborn.recovered[0].drain()
        assert len(deliveries) == 1
        assert deliveries[0].sequence == 1
        reborn.close()

    def test_undrained_inbox_survives_restart(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.publish(EVENT)
        broker.close()

        reborn = make_broker(space, tmp_path)
        deliveries = reborn.recovered[0].drain()
        assert len(deliveries) == 1
        assert deliveries[0].event == EVENT
        assert deliveries[0].sequence == 0
        reborn.close()

    def test_dead_letters_survive_restart(self, space, tmp_path):
        def blow_up(delivery):
            raise RuntimeError("scripted consumer bug")

        config = BrokerConfig(
            delivery=DeliveryPolicy.no_retry(jitter=0.0, breaker_threshold=0),
            durability=DurabilityPolicy(directory=str(tmp_path)),
        )
        broker = ThematicBroker(
            ThematicMatcher(ThematicMeasure(space)), config
        )
        broker.subscribe(MATCHING, blow_up)
        broker.publish(EVENT)
        assert len(broker.dead_letters) == 1
        broker.close()

        reborn = ThematicBroker(
            ThematicMatcher(ThematicMeasure(space)), config
        )
        records = reborn.dead_letters.drain()
        assert len(records) == 1
        assert records[0].subscriber_id == 0
        assert records[0].delivery.sequence == 0
        reborn.close()

    def test_unsubscribe_is_durable(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        handle = broker.subscribe(MATCHING)
        broker.subscribe(NON_MATCHING)
        broker.unsubscribe(handle)
        broker.close()

        reborn = make_broker(space, tmp_path)
        assert set(reborn.recovered) == {1}
        assert reborn.subscriber_count() == 1
        reborn.close()


class TestEffectivelyOnce:
    """A callback that ran before the crash must not run again after it.

    The scenario from the module docstring: the broker dies *after* the
    ``ack`` record hit the disk but *before* the inbox append — the
    exact at-least-once edge PR 4's retries leave open.
    """

    def ack_offset(self, space, directory):
        """Run the scenario crash-free and locate its first ack frame."""
        broker = make_broker(space, directory)
        broker.subscribe(MATCHING, lambda delivery: None)
        broker.publish(EVENT)
        broker.close()
        segment = wal_files(directory)[0]
        scan = read_wal_segment(segment)
        for record, offset in zip(scan.records, scan.offsets):
            if record["t"] == "ack":
                return offset
        raise AssertionError("clean run journaled no ack record")

    def test_acked_consumption_is_not_reinvoked_after_recovery(
        self, space, tmp_path
    ):
        # Canonical encoding makes journals byte-identical across runs,
        # so an offset discovered in the scout directory targets the
        # same ack append in the kill directory.
        at = self.ack_offset(space, tmp_path / "scout")
        calls = []

        kill_dir = tmp_path / "kill"
        broker = make_broker(space, kill_dir)
        broker.subscribe(MATCHING, calls.append)
        broker.durability.arm_kill(at, mode="after")
        with pytest.raises(SimulatedCrash):
            broker.publish(EVENT)
        assert len(calls) == 1  # consumed once, then the process died

        reborn = make_broker(space, kill_dir)
        reborn.recovered[0].callback = calls.append
        assert reborn.durability.state.pending  # no `done`: in flight
        completed = reborn.recover_pending()
        assert completed == 1
        # The ack was durable: the re-dispatch is suppressed, the
        # callback is NOT re-invoked, and the delivery lands in the
        # inbox exactly once.
        assert len(calls) == 1
        suppressed = reborn.metrics.registry.counter(
            "durability.duplicates_suppressed"
        )
        assert suppressed.value >= 1
        assert len(reborn.recovered[0].drain()) == 1
        reborn.close()

    def test_unacked_delivery_is_redispatched(self, space, tmp_path):
        at = self.ack_offset(space, tmp_path / "scout")
        calls = []

        kill_dir = tmp_path / "kill"
        broker = make_broker(space, kill_dir)
        broker.subscribe(MATCHING, calls.append)
        # Same append, mode "before": the ack never reached the disk,
        # so the callback's one pre-crash run is invisible — recovery
        # must deliver again (at-least-once, the honest fallback).
        broker.durability.arm_kill(at, mode="before")
        with pytest.raises(SimulatedCrash):
            broker.publish(EVENT)
        assert len(calls) == 1

        reborn = make_broker(space, kill_dir)
        reborn.recovered[0].callback = calls.append
        assert reborn.recover_pending() == 1
        assert len(calls) == 2
        assert len(reborn.recovered[0].drain()) == 1
        reborn.close()


class TestStableSubscriberKeys:
    def test_key_is_assigned_at_subscribe_time(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        handle = broker.subscribe(MATCHING)
        assert handle.key == stable_subscriber_key(handle.id, MATCHING)
        assert handle.key.startswith("sub-")
        broker.close()

    def test_key_is_stable_across_restart_and_processes(
        self, space, tmp_path
    ):
        broker = make_broker(space, tmp_path / "a")
        first = broker.subscribe(MATCHING)
        broker.close()
        other = make_broker(space, tmp_path / "b")
        second = other.subscribe(MATCHING)
        other.close()
        # Same id + same subscription => same key, whatever process
        # (or journal directory) produced it.
        assert first.key == second.key

        reborn = make_broker(space, tmp_path / "a")
        assert reborn.recovered[0].key == first.key
        reborn.close()

    def test_key_is_json_serializable(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        handle = broker.subscribe(MATCHING)
        assert json.loads(json.dumps(handle.key)) == handle.key
        broker.close()

    def test_distinct_subscriptions_get_distinct_keys(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        one = broker.subscribe(MATCHING)
        two = broker.subscribe(NON_MATCHING)
        assert one.key != two.key
        broker.close()


class TestSnapshotRotation:
    def test_snapshot_cadence_rotates_segments(self, space, tmp_path):
        broker = make_broker(space, tmp_path, snapshot_every=5)
        broker.subscribe(MATCHING)
        for _ in range(4):
            broker.publish(EVENT)
        broker.close()
        assert len(wal_files(tmp_path)) > 1
        assert list(tmp_path.glob("snap-*.json"))

        reborn = make_broker(space, tmp_path)
        assert reborn.durability.report.snapshot_generation is not None
        assert reborn.subscriber_count() == 1
        assert reborn._sequence == 4
        reborn.close()

    def test_snapshot_crc_guards_the_state(self, space, tmp_path):
        broker = make_broker(space, tmp_path)
        broker.subscribe(MATCHING)
        broker.durability.snapshot_now()
        broker.close()
        newest = sorted(tmp_path.glob("snap-*.json"))[-1]
        document = json.loads(newest.read_text())
        state = document["state"]
        assert document["crc"] == zlib.crc32(
            json.dumps(state, sort_keys=True, separators=(",", ":")).encode()
        )
