"""Process-pool shard executor: parity, spec derivation, lifecycle.

Spawned workers are expensive on this box (each spawn re-imports numpy
and the package), so the tests that actually fork keep shard counts and
event counts small and pack several assertions per broker. The
exhaustive randomized parity suite stays on the thread executor
(:mod:`tests.broker.test_sharded_parity`); here we pin that the process
executor takes the *same* float path as a serial vectorized broker —
exact signature equality, not approximate.
"""

import numpy as np
import pytest

from repro.broker import BrokerConfig, ShardedBroker, ThematicBroker
from repro.broker.procshard import (
    ProcessShardExecutor,
    WorkerSpec,
    _build_clock,
    _describe_clock,
    spec_from_matcher,
)
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.obs.clock import MONOTONIC_CLOCK, FakeClock
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import (
    CachedMeasure,
    NonThematicMeasure,
    ThematicMeasure,
)
from tests.broker.test_sharded_parity import _signature

SUBSCRIPTIONS = [
    parse_subscription(
        "({power, computers},"
        " {type= increased energy usage event~, device~= laptop~,"
        "  office= room 112})"
    ),
    parse_subscription(
        "({transport}, {vehicle~= bus~, pollutant~= smog~})"
    ),
    parse_subscription(
        "({energy}, {device~= computer~})"
    ),
]
EVENTS = [
    parse_event(
        "({energy, appliances, building},"
        " {type: increased energy consumption event, device: computer,"
        "  office: room 112})"
    ),
    parse_event(
        "({transport, environment},"
        " {vehicle: vehicle, pollutant: pollution})"
    ),
    parse_event(
        "({energy}, {device: computer, office: room 112})"
    ),
    parse_event(
        "({weather}, {type: zzz unknown term})"
    ),
]


def _vec_matcher(space, k: int = 1, threshold: float = 0.5) -> ThematicMatcher:
    return ThematicMatcher(
        CachedMeasure(
            ThematicMeasure(space, vectorized=True), RelatednessCache()
        ),
        k=k,
        threshold=threshold,
    )


class TestProcessParity:
    def test_deliveries_identical_to_serial_vectorized(self, space):
        """Same workload through a serial vectorized broker and through
        two spawned shard workers: exact signature equality (sequence,
        event, score, assignment, alternatives) — plus replay and
        post-close observability in the same (expensive) broker."""
        event_index = {id(event): j for j, event in enumerate(EVENTS)}

        serial = ThematicBroker(_vec_matcher(space, k=2))
        serial_handles = [serial.subscribe(s) for s in SUBSCRIPTIONS]
        for event in EVENTS:
            serial.publish(event)
        serial_sig = _signature(serial_handles, event_index)

        with ShardedBroker(
            _vec_matcher(space, k=2),
            BrokerConfig(shards=2, max_batch=3, executor="process"),
        ) as broker:
            handles = [broker.subscribe(s) for s in SUBSCRIPTIONS]
            for event in EVENTS:
                broker.publish(event)
            assert broker.flush(timeout=120), "broker did not drain"
            sharded_sig = _signature(handles, event_index)

            # Replay runs on the parent's kernel: same scores, same order.
            replay = broker.subscribe(SUBSCRIPTIONS[0], replay=True)
            replay_sig = _signature([replay], event_index)
            assert replay_sig[0] == serial_sig[0]

            snapshot = broker.metrics_snapshot()
            assert set(snapshot["shards"]) == {"shard0", "shard1"}
            assert snapshot["engine_totals"]["engine.evaluations"] > 0
            counters = broker.metrics.registry.snapshot()["counters"]
            assert counters["shard.worker.batches"] >= 2
            assert counters["shard.worker.events"] == len(EVENTS)

        assert sharded_sig == serial_sig
        # run_broker_workload reads metrics *after* close: the executor
        # serves the snapshots it cached during shutdown.
        post = broker.metrics_snapshot()
        assert set(post["shards"]) == {"shard0", "shard1"}

    def test_parity_across_unsubscribe_rebalance(self, space):
        """Size-balanced rebalancing moves registrations between live
        worker processes; survivors' streams must not change."""
        event_index = {id(event): j for j, event in enumerate(EVENTS)}

        def run(make_broker, flush):
            broker = make_broker()
            handles = [broker.subscribe(s) for s in SUBSCRIPTIONS]
            for event in EVENTS[:2]:
                broker.publish(event)
            flush(broker)
            broker.unsubscribe(handles[0])
            for event in EVENTS[2:]:
                broker.publish(event)
            flush(broker)
            if hasattr(broker, "close"):
                broker.close()
            return _signature(handles[1:], event_index)

        serial = run(
            lambda: ThematicBroker(_vec_matcher(space)), lambda b: None
        )
        sharded = run(
            lambda: ShardedBroker(
                _vec_matcher(space),
                BrokerConfig(
                    shards=2, strategy="size", max_batch=2, executor="process"
                ),
            ),
            lambda b: b.flush(120),
        )
        assert sharded == serial


class TestExecutorLifecycle:
    def test_direct_executor_roundtrip_and_close(self, space):
        matcher = _vec_matcher(space)
        executor = ProcessShardExecutor(matcher, shards=1)
        try:
            executor.subscribe(0, 7, SUBSCRIPTIONS[0])
            assert executor.loads() == [1]

            survivors = executor.match_batch([EVENTS[0]])
            assert survivors, "known-matching pair produced no survivor"
            order, j, matrix = survivors[0]
            assert (order, j) == (7, 0)
            assert isinstance(matrix, np.ndarray)
            assert matrix.dtype == np.float64

            result = executor.build_result(
                SUBSCRIPTIONS[0], EVENTS[0], matrix
            )
            assert result is not None
            reference = matcher.match(SUBSCRIPTIONS[0], EVENTS[0])
            assert result.score == reference.score
            assert (
                result.mapping.assignment()
                == reference.mapping.assignment()
            )

            replayed = executor.match_one(SUBSCRIPTIONS[0], EVENTS[0])
            assert replayed is not None
            assert replayed.score == reference.score

            (live,) = executor.shard_snapshots()
            assert live["counters"]["engine.evaluations"] >= 1
        finally:
            executor.close()

        executor.close()  # idempotent
        (cached,) = executor.shard_snapshots()
        assert cached["counters"]["engine.evaluations"] >= 1
        with pytest.raises(RuntimeError, match="closed"):
            executor.subscribe(0, 8, SUBSCRIPTIONS[1])
        with pytest.raises(RuntimeError, match="closed"):
            executor.match_batch([EVENTS[0]])

    def test_zero_shards_rejected(self, space):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ProcessShardExecutor(_vec_matcher(space), shards=0)

    def test_scalar_matcher_rejected_before_any_spawn(self, space):
        matcher = ThematicMatcher(CachedMeasure(ThematicMeasure(space)))
        with pytest.raises(ValueError, match="vectorized"):
            ProcessShardExecutor(matcher, shards=1)

    def test_unknown_executor_name_rejected(self, space):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedBroker(
                _vec_matcher(space), BrokerConfig(executor="fibers")
            )


class TestSpecFromMatcher:
    def _spec(self, matcher, clock=MONOTONIC_CLOCK) -> WorkerSpec:
        return spec_from_matcher(
            matcher,
            space_path="/tmp/unused.repro-col",
            digest="0" * 64,
            shard_index=3,
            degraded=None,
            clock=clock,
        )

    def test_cached_thematic_matcher_round_trips(self, space):
        spec = self._spec(_vec_matcher(space, k=2, threshold=0.6))
        assert spec.thematic and spec.cached
        assert spec.mode == "common"
        assert (spec.k, spec.threshold) == (2, 0.6)
        assert spec.clock == ("monotonic",)
        assert spec.shard_index == 3

    def test_bare_nonthematic_matcher_supported(self, space):
        matcher = ThematicMatcher(NonThematicMeasure(space, vectorized=True))
        spec = self._spec(matcher)
        assert not spec.thematic and not spec.cached
        assert spec.mode == "common"

    def test_scalar_measure_rejected(self, space):
        with pytest.raises(ValueError, match="vectorized"):
            self._spec(ThematicMatcher(ThematicMeasure(space)))

    def test_foreign_measure_family_rejected(self, space):
        class WeirdMeasure:
            vectorized = True

            def score(self, *args):  # pragma: no cover - never scored
                return 0.0

        with pytest.raises(ValueError, match="ThematicMeasure"):
            self._spec(ThematicMatcher(WeirdMeasure()))


class TestClockShipping:
    def test_fake_clock_round_trips_monotonic_and_wall(self):
        clock = FakeClock(5.0, epoch=100.0)
        description = _describe_clock(clock)
        assert description == ("fake", 5.0, 105.0)
        rebuilt = _build_clock(description)
        assert isinstance(rebuilt, FakeClock)
        assert rebuilt.monotonic() == 5.0
        assert rebuilt.wall() == 105.0

    def test_real_clock_ships_as_monotonic(self):
        assert _describe_clock(MONOTONIC_CLOCK) == ("monotonic",)
        assert _build_clock(("monotonic",)) is MONOTONIC_CLOCK
