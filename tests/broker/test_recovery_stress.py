"""Crash-anywhere: no-loss must survive a kill at ANY journal offset.

The durable-state acceptance bar. Hypothesis draws a fault plan, a WAL
byte offset, and what the dying write leaves on disk (nothing / a torn
frame / a durable frame whose in-memory effect never happened), then
:func:`repro.evaluation.run_fault_injection` kills the broker there,
restarts it from disk, and re-drives the remaining stream — on the
serial, threaded, and sharded brokers alike, all on a fake clock.

The invariant is the same one PR 4 proved for in-process faults, now
across a process death: per subscriber,

    inbox deliveries + dead-letter records == fault-free matched count

with recovery's idempotency suppression guaranteeing the "no duplicate
consumption" half — an acked (subscriber, sequence) key is never
consumed twice, whatever offset the crash hit.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker.faults import CallbackFault, FaultPlan, KillFault
from repro.evaluation import run_fault_injection

#: Same slice as test_fault_stress: big enough to journal a few
#: thousand bytes (subscriptions + events + acks), cheap enough to run
#: three brokers per example.
RUN_KWARGS = dict(max_events=30, max_subscriptions=6, seed=99)

#: The tiny run's journal is ~3-4 KB; drawing offsets past the end
#: exercises the "kill never fires" path on purpose.
MAX_KILL_OFFSET = 4_000

STRESS_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def kill_plans(draw, max_subscribers=6):
    """A FaultPlan with a kill point, optionally composed with retries."""
    count = draw(st.integers(min_value=0, max_value=2))
    subscribers = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_subscribers - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    callbacks = tuple(
        CallbackFault(
            subscriber=subscriber,
            kind=draw(st.sampled_from(["raise", "flaky"])),
            times=draw(st.integers(min_value=1, max_value=3)),
        )
        for subscriber in subscribers
    )
    kill = KillFault(
        at=draw(st.integers(min_value=0, max_value=MAX_KILL_OFFSET)),
        mode=draw(st.sampled_from(["before", "torn", "after"])),
    )
    return FaultPlan(name="crash-anywhere", callbacks=callbacks, kill=kill)


def assert_no_loss_across_restart(report):
    assert report["strict"]
    for kind, entry in report["brokers"].items():
        assert entry["no_loss"], (
            f"{kind}: accounted={entry['accounted']} "
            f"!= baseline={report['baseline']} "
            f"(restarted={entry.get('restarted')}, "
            f"resumed_at={entry.get('resumed_at')})"
        )
        assert entry["accounted"] == report["baseline"]
        if entry["restarted"]:
            recovery = entry["recovery"]
            # Recovery never swallows disk damage silently: a corrupt
            # record in a *fresh* journal would mean the writer itself
            # is broken.
            assert recovery["corrupt_records"] == 0
            # No duplicate consumption: settled keys may be suppressed,
            # never re-consumed, so accounting above is exact — and the
            # journal never re-matched an event to a different result.
            assert entry["durability"]["restore_misses"] == 0
    assert report["no_loss"]


class TestCrashAnywhere:
    @STRESS_SETTINGS
    @given(plan=kill_plans())
    def test_kill_restart_preserves_no_loss(self, tiny_workload, plan):
        report = run_fault_injection(tiny_workload, plan, **RUN_KWARGS)
        assert_no_loss_across_restart(report)


class TestRepresentativeKills:
    def run(self, workload, plan, **overrides):
        return run_fault_injection(workload, plan, **{**RUN_KWARGS, **overrides})

    def test_kill_during_registration(self, tiny_workload):
        # The subscription records alone span ~3 KB; offset 0 dies on
        # the very first journal append, before any event exists.
        plan = FaultPlan(name="reg-kill", kill=KillFault(at=0, mode="before"))
        report = self.run(tiny_workload, plan)
        assert_no_loss_across_restart(report)
        for entry in report["brokers"].values():
            assert entry["restarted"]
            assert entry["resumed_at"] == 0

    def test_kill_mid_stream_resumes_partway(self, tiny_workload):
        plan = FaultPlan(name="mid-kill", kill=KillFault(at=3_000, mode="torn"))
        report = self.run(tiny_workload, plan)
        assert_no_loss_across_restart(report)
        for entry in report["brokers"].values():
            assert entry["restarted"]
            assert entry["recovery"]["restored_subscriptions"] > 0

    def test_durable_frame_with_lost_memory_is_not_reconsumed(
        self, tiny_workload
    ):
        # "after" mode: the record that crossed the offset IS on disk,
        # its in-memory effect is not — the effectively-once edge.
        plan = FaultPlan(name="after-kill", kill=KillFault(at=3_000, mode="after"))
        report = self.run(tiny_workload, plan)
        assert_no_loss_across_restart(report)

    def test_unreachable_offset_never_restarts(self, tiny_workload):
        plan = FaultPlan(
            name="no-kill", kill=KillFault(at=10**9, mode="before")
        )
        report = self.run(tiny_workload, plan)
        assert_no_loss_across_restart(report)
        for entry in report["brokers"].values():
            assert not entry["restarted"]

    def test_kill_composes_with_retry_faults(self, tiny_workload):
        # PR 4's retries and this PR's recovery, in the same run: a
        # flaky subscriber burning retry budget while the broker dies
        # mid-stream must still account for every matched delivery.
        plan = FaultPlan(
            name="kill+flaky",
            callbacks=(CallbackFault(subscriber=1, kind="flaky", times=2),),
            kill=KillFault(at=3_200, mode="torn"),
        )
        report = self.run(tiny_workload, plan)
        assert_no_loss_across_restart(report)

    def test_kill_plan_round_trips_through_json(self):
        plan = FaultPlan(
            name="wire",
            callbacks=(CallbackFault(subscriber=0, kind="raise"),),
            kill=KillFault(at=1_234, mode="torn"),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
