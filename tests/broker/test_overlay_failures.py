"""Fault-injection tests for the broker overlay."""

import networkx as nx
import pytest

from repro.broker.overlay import BrokerOverlay
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import CachedMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy}, {type: increased energy consumption event, device: computer,"
    " office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power}, {type= increased energy usage event~, device~= laptop~,"
    " office= room 112})"
)


@pytest.fixture()
def overlay(space):
    # A path 0-1-2-3: node 1/2 failures partition the ends.
    return BrokerOverlay(
        nx.path_graph(4),
        lambda: ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
    )


class TestFailures:
    def test_publishing_at_failed_node_raises(self, overlay):
        overlay.fail_node(0)
        with pytest.raises(RuntimeError, match="down"):
            overlay.publish(0, EVENT)

    def test_failed_node_does_not_match_locally(self, overlay):
        handle = overlay.subscribe(1, SUBSCRIPTION)
        overlay.fail_node(1)
        overlay.publish(0, EVENT)
        assert len(handle.inbox) == 0

    def test_partition_blocks_delivery_behind_failure(self, overlay):
        far = overlay.subscribe(3, SUBSCRIPTION)
        overlay.fail_node(1)  # cuts 0 from {2, 3}
        overlay.publish(0, EVENT)
        assert len(far.inbox) == 0

    def test_recovery_restores_routing(self, overlay):
        far = overlay.subscribe(3, SUBSCRIPTION)
        overlay.fail_node(1)
        overlay.publish(0, EVENT)
        overlay.recover_node(1)
        overlay.publish(0, EVENT)
        assert len(far.inbox) == 1  # only the post-recovery event arrives

    def test_redundant_paths_survive_single_failure(self, space):
        ring = BrokerOverlay(
            nx.cycle_graph(4),
            lambda: ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
        )
        far = ring.subscribe(2, SUBSCRIPTION)
        ring.fail_node(1)  # the other way around the ring still works
        ring.publish(0, EVENT)
        assert len(far.inbox) == 1

    def test_failed_nodes_listed(self, overlay):
        overlay.fail_node(2)
        assert overlay.failed_nodes() == (2,)
        overlay.recover_node(2)
        assert overlay.failed_nodes() == ()

    def test_subscriptions_survive_crash(self, overlay):
        handle = overlay.subscribe(1, SUBSCRIPTION)
        overlay.fail_node(1)
        overlay.recover_node(1)
        overlay.publish(0, EVENT)
        assert len(handle.inbox) == 1
