"""Unit tests for the fault-tolerant delivery layer.

Everything here runs against :class:`ReliableDelivery` directly with a
:class:`FakeClock` and synthetic deliveries — no broker, no matcher, no
wall-clock sleeps — so each policy knob (retries, backoff, deadline,
breaker, dead letters) is exercised in isolation and deterministically.
"""

import logging
import threading

import pytest

from repro.broker.broker import BrokerMetrics, Delivery
from repro.broker.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DeadLetterQueue,
    DeadLetterRecord,
    DeliveryPolicy,
    ReliableDelivery,
)
from repro.core.engine import SubscriptionHandle
from repro.obs.clock import FakeClock


def make_delivery(sequence=0):
    return Delivery(result=None, sequence=sequence)


def make_handle(callback=None, *, subscriber_id=0, policy=None):
    return SubscriptionHandle(
        id=subscriber_id, subscription=None, policy=policy, callback=callback
    )


def make_engine(policy, clock=None):
    clock = clock if clock is not None else FakeClock()
    metrics = BrokerMetrics()
    engine = ReliableDelivery(metrics, policy=policy, clock=clock)
    return engine, metrics, clock


def counters(engine):
    return engine.metrics.registry.snapshot()["counters"]


class TestDeliveryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_cap": -0.1},
            {"backoff_multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
            {"breaker_reset": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DeliveryPolicy(**kwargs)

    def test_no_retry_is_single_attempt(self):
        policy = DeliveryPolicy.no_retry()
        assert policy.max_retries == 0
        assert policy.max_attempts == 1

    def test_max_attempts(self):
        assert DeliveryPolicy(max_retries=3).max_attempts == 4

    def test_backoff_schedule_deterministic_without_jitter(self):
        policy = DeliveryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_cap=0.5, jitter=0.0
        )
        delays = [policy.backoff_delay(n, rng=None) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.5]  # capped at the end

    def test_jitter_stays_within_fraction(self):
        import random

        policy = DeliveryPolicy(
            backoff_base=1.0, backoff_multiplier=1.0, jitter=0.25
        )
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.backoff_delay(1, rng)
            assert 0.75 <= delay <= 1.25

    def test_seeded_jitter_is_reproducible(self):
        policy = DeliveryPolicy(jitter=0.3)
        import random

        a = [policy.backoff_delay(n, random.Random(42)) for n in (1, 2, 3)]
        b = [policy.backoff_delay(n, random.Random(42)) for n in (1, 2, 3)]
        assert a == b


class TestDeadLetterQueue:
    def record(self, seq=0, subscriber_id=0):
        return DeadLetterRecord(
            delivery=make_delivery(seq),
            subscriber_id=subscriber_id,
            reason="retries_exhausted",
            attempts=1,
        )

    def test_append_drain_peek_len(self):
        queue = DeadLetterQueue()
        queue.append(self.record(0))
        queue.append(self.record(1))
        assert len(queue) == 2
        assert [r.delivery.sequence for r in queue.peek()] == [0, 1]
        assert len(queue) == 2  # peek is non-destructive
        assert [r.delivery.sequence for r in queue.drain()] == [0, 1]
        assert len(queue) == 0
        assert queue.drain() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)

    def test_capacity_evicts_oldest_and_warns(self, caplog):
        queue = DeadLetterQueue(capacity=2)
        with caplog.at_level(logging.WARNING, logger="repro.broker.reliability"):
            for seq in range(3):
                queue.append(self.record(seq))
        assert [r.delivery.sequence for r in queue.drain()] == [1, 2]
        assert any("evicting oldest" in r.message for r in caplog.records)


class TestCircuitBreaker:
    def test_closed_allows_and_counts_to_threshold(self):
        breaker = CircuitBreaker(threshold=3, reset=10.0)
        assert breaker.allow(0.0)
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        assert breaker.record_failure(3.0)  # CLOSED -> OPEN reported once
        assert breaker.state == OPEN

    def test_open_blocks_until_reset_then_half_open(self):
        breaker = CircuitBreaker(threshold=1, reset=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.allow(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow(10.0)  # half-open keeps letting the probe through

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        breaker.allow(1.0)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens_without_reporting_new_open(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        breaker.allow(1.0)
        assert breaker.state == HALF_OPEN
        assert not breaker.record_failure(1.5)  # was never closed
        assert breaker.state == OPEN
        assert breaker.opened_at == 1.5  # reset clock restarted

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(threshold=0, reset=1.0)
        for now in range(10):
            assert not breaker.record_failure(float(now))
            assert breaker.allow(float(now))
        assert breaker.state == CLOSED


class TestDispatch:
    def test_no_callback_is_pure_inbox_append(self):
        engine, metrics, _ = make_engine(DeliveryPolicy())
        handle = make_handle()
        assert engine.dispatch(handle, make_delivery())
        assert len(handle.drain()) == 1
        assert metrics.deliveries == 1
        assert len(engine.dead_letters) == 0

    def test_success_appends_after_callback(self):
        seen = []
        engine, metrics, _ = make_engine(DeliveryPolicy())
        handle = make_handle(seen.append)
        assert engine.dispatch(handle, make_delivery(7))
        assert [d.sequence for d in seen] == [7]
        assert [d.sequence for d in handle.drain()] == [7]
        assert metrics.deliveries == 1
        assert metrics.callback_errors == 0

    def test_flaky_callback_retried_to_success(self):
        calls = []

        def flaky(delivery):
            calls.append(delivery)
            if len(calls) < 3:
                raise RuntimeError("transient")

        engine, metrics, _ = make_engine(
            DeliveryPolicy(max_retries=3, jitter=0.0)
        )
        handle = make_handle(flaky)
        assert engine.dispatch(handle, make_delivery())
        assert len(calls) == 3
        assert metrics.callback_errors == 2
        assert counters(engine)["reliability.retries"] == 2
        assert len(handle.drain()) == 1
        assert len(engine.dead_letters) == 0

    def test_backoff_sleeps_flow_through_clock(self):
        engine, _, clock = make_engine(
            DeliveryPolicy(
                max_retries=2,
                backoff_base=0.1,
                backoff_multiplier=2.0,
                backoff_cap=10.0,
                jitter=0.0,
                breaker_threshold=0,
            )
        )
        handle = make_handle(lambda d: 1 / 0)
        assert not engine.dispatch(handle, make_delivery())
        # Two retries: 0.1 then 0.2 seconds of (fake) backoff.
        assert clock.monotonic() == pytest.approx(0.3)

    def test_exhausted_delivery_dead_lettered_not_inboxed(self, caplog):
        engine, metrics, _ = make_engine(
            DeliveryPolicy(max_retries=1, jitter=0.0, breaker_threshold=0)
        )
        handle = make_handle(lambda d: (_ for _ in ()).throw(ValueError("boom")))
        with caplog.at_level(logging.ERROR, logger="repro.broker.reliability"):
            assert not engine.dispatch(handle, make_delivery(3))
        assert handle.drain() == []
        assert metrics.deliveries == 0
        assert metrics.callback_errors == 2
        records = engine.dead_letters.drain()
        assert len(records) == 1
        record = records[0]
        assert record.subscriber_id == 0
        assert record.reason == "retries_exhausted"
        assert record.attempts == 2
        assert record.delivery.sequence == 3
        assert "boom" in record.error
        assert "ValueError" in record.traceback
        assert any("dead-lettered" in r.message for r in caplog.records)

    def test_deadline_exceeded_counts_and_dead_letters(self):
        clock = FakeClock()

        def slow(delivery):
            clock.advance(0.5)

        engine, metrics, _ = make_engine(
            DeliveryPolicy.no_retry(deadline=0.1, breaker_threshold=0),
            clock=clock,
        )
        handle = make_handle(slow)
        assert not engine.dispatch(handle, make_delivery())
        assert counters(engine)["reliability.deadline_exceeded"] == 1
        assert metrics.callback_errors == 1
        record = engine.dead_letters.drain()[0]
        assert "TimeoutError" in record.error
        assert "deadline" in record.error

    def test_callback_within_deadline_delivers(self):
        clock = FakeClock()
        engine, metrics, _ = make_engine(
            DeliveryPolicy.no_retry(deadline=1.0), clock=clock
        )
        handle = make_handle(lambda d: clock.advance(0.2))
        assert engine.dispatch(handle, make_delivery())
        assert metrics.deliveries == 1

    def test_per_subscription_policy_overrides_default(self):
        engine, metrics, _ = make_engine(DeliveryPolicy(max_retries=5))
        handle = make_handle(
            lambda d: 1 / 0,
            policy=DeliveryPolicy.no_retry(breaker_threshold=0),
        )
        assert not engine.dispatch(handle, make_delivery())
        assert metrics.callback_errors == 1  # exactly one attempt
        assert counters(engine)["reliability.retries"] == 0


class TestBreakerIntegration:
    def breaker_engine(self, clock):
        policy = DeliveryPolicy(
            max_retries=0,
            jitter=0.0,
            breaker_threshold=2,
            breaker_reset=10.0,
        )
        return make_engine(policy, clock=clock)

    def test_breaker_opens_then_short_circuits(self, caplog):
        clock = FakeClock()
        engine, _, _ = self.breaker_engine(clock)
        handle = make_handle(lambda d: 1 / 0)
        with caplog.at_level(logging.WARNING, logger="repro.broker.reliability"):
            engine.dispatch(handle, make_delivery(0))
            engine.dispatch(handle, make_delivery(1))
        assert engine.breaker_state(0) == OPEN
        assert any("circuit breaker opened" in r.message for r in caplog.records)
        # Third dispatch never reaches the callback.
        calls = []
        handle.callback = calls.append
        assert not engine.dispatch(handle, make_delivery(2))
        assert calls == []
        snap = counters(engine)
        assert snap["reliability.breaker_opens"] == 1
        assert snap["reliability.breaker_short_circuits"] == 1
        record = engine.dead_letters.drain()[-1]
        assert record.reason == "circuit_open"
        assert record.attempts == 0
        assert engine.metrics.registry.snapshot()["gauges"][
            "reliability.breakers_open"
        ] == 1.0

    def test_breaker_probe_recovers_after_reset(self):
        clock = FakeClock()
        engine, metrics, _ = self.breaker_engine(clock)
        handle = make_handle(lambda d: 1 / 0)
        engine.dispatch(handle, make_delivery(0))
        engine.dispatch(handle, make_delivery(1))
        assert engine.breaker_state(0) == OPEN
        clock.advance(10.0)
        handle.callback = lambda d: None  # subscriber fixed itself
        assert engine.dispatch(handle, make_delivery(2))
        assert engine.breaker_state(0) == CLOSED
        assert metrics.deliveries == 1
        assert engine.metrics.registry.snapshot()["gauges"][
            "reliability.breakers_open"
        ] == 0.0

    def test_failed_probe_keeps_breaker_open_without_double_count(self):
        clock = FakeClock()
        engine, _, _ = self.breaker_engine(clock)
        handle = make_handle(lambda d: 1 / 0)
        engine.dispatch(handle, make_delivery(0))
        engine.dispatch(handle, make_delivery(1))
        clock.advance(10.0)
        engine.dispatch(handle, make_delivery(2))  # failed probe
        assert engine.breaker_state(0) == OPEN
        snap = engine.metrics.registry.snapshot()
        assert snap["counters"]["reliability.breaker_opens"] == 1
        assert snap["gauges"]["reliability.breakers_open"] == 1.0

    def test_breakers_are_per_subscriber(self):
        clock = FakeClock()
        engine, _, _ = self.breaker_engine(clock)
        bad = make_handle(lambda d: 1 / 0, subscriber_id=0)
        good_seen = []
        good = make_handle(good_seen.append, subscriber_id=1)
        engine.dispatch(bad, make_delivery(0))
        engine.dispatch(bad, make_delivery(1))
        assert engine.breaker_state(0) == OPEN
        assert engine.breaker_state(1) == CLOSED
        assert engine.dispatch(good, make_delivery(2))
        assert len(good_seen) == 1

    def test_gauge_recomputed_from_states_across_breakers(self):
        """The gauge is derived from breaker states, not a drift-prone
        mirror counter: two tripped breakers read 2, one recovery reads
        1, regardless of the order events interleaved in."""
        clock = FakeClock()
        engine, _, _ = self.breaker_engine(clock)
        a = make_handle(lambda d: 1 / 0, subscriber_id=0)
        b = make_handle(lambda d: 1 / 0, subscriber_id=1)
        for seq in range(2):
            engine.dispatch(a, make_delivery(seq))
            engine.dispatch(b, make_delivery(seq))

        def gauge():
            return engine.metrics.registry.snapshot()["gauges"][
                "reliability.breakers_open"
            ]

        assert engine.breaker_state(0) == engine.breaker_state(1) == OPEN
        assert gauge() == 2.0
        clock.advance(10.0)
        a.callback = lambda d: None  # subscriber 0 fixed itself
        assert engine.dispatch(a, make_delivery(9))  # half-open probe succeeds
        assert gauge() == 1.0
        engine.dispatch(b, make_delivery(9))  # failed probe: stays tripped
        assert gauge() == 1.0


class TestLockGranularity:
    """The breaker lock must never be held across callback execution."""

    def test_callback_may_reenter_dispatch_without_deadlock(self):
        """Regression: a callback that re-enters the delivery engine
        (publish/subscribe-with-replay do exactly this through the
        broker) used to deadlock on the non-reentrant breaker lock."""
        engine, _, _ = make_engine(DeliveryPolicy())
        inner_seen = []
        inner = make_handle(inner_seen.append, subscriber_id=1)
        outer = make_handle(
            lambda d: engine.dispatch(inner, make_delivery(99)),
            subscriber_id=0,
        )
        worker = threading.Thread(
            target=engine.dispatch, args=(outer, make_delivery(1)), daemon=True
        )
        worker.start()
        worker.join(timeout=10.0)
        assert not worker.is_alive(), "re-entrant dispatch deadlocked"
        assert [d.sequence for d in inner_seen] == [99]
        assert [d.sequence for d in outer.drain()] == [1]
        assert len(engine.dead_letters) == 0

    def test_stalled_callback_does_not_block_other_subscribers(self):
        """Regression: while one subscriber's callback is mid-flight,
        dispatch to another subscriber and the breaker_state hook must
        proceed — no head-of-line blocking on the breaker lock."""
        engine, _, _ = make_engine(DeliveryPolicy())
        entered = threading.Event()
        release = threading.Event()

        def stall(delivery):
            entered.set()
            assert release.wait(timeout=10.0)

        slow = make_handle(stall, subscriber_id=0)
        fast_seen = []
        fast = make_handle(fast_seen.append, subscriber_id=1)
        stalled = threading.Thread(
            target=engine.dispatch, args=(slow, make_delivery(0)), daemon=True
        )
        stalled.start()
        assert entered.wait(timeout=10.0)
        done = threading.Event()

        def other_subscriber():
            engine.dispatch(fast, make_delivery(1))
            engine.breaker_state(0)
            done.set()

        prober = threading.Thread(target=other_subscriber, daemon=True)
        prober.start()
        unblocked = done.wait(timeout=10.0)
        release.set()
        stalled.join(timeout=10.0)
        prober.join(timeout=10.0)
        assert unblocked, "dispatch blocked behind another subscriber's callback"
        assert len(fast_seen) == 1


class TestConcurrentDrain:
    def test_drain_under_concurrent_delivery_loses_nothing(self):
        """Satellite: drain ordering/completeness under concurrent dispatch.

        Many producer threads dispatch to one handle while a consumer
        drains in a loop; every sequence must surface exactly once, and
        each drained batch must preserve arrival order (drain holds the
        handle lock, so batches are internally consistent).
        """
        engine, _, _ = make_engine(DeliveryPolicy())
        handle = make_handle()
        producers, per_producer = 8, 50
        total = producers * per_producer

        def produce(base):
            for i in range(per_producer):
                engine.dispatch(handle, make_delivery(base + i))

        drained = []
        stop = threading.Event()

        def consume():
            while not stop.is_set() or len(handle.inbox):
                drained.append(handle.drain())

        threads = [
            threading.Thread(target=produce, args=(n * per_producer,))
            for n in range(producers)
        ]
        consumer = threading.Thread(target=consume)
        consumer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        consumer.join()
        drained.append(handle.drain())

        sequences = [d.sequence for batch in drained for d in batch]
        assert sorted(sequences) == list(range(total))  # nothing lost, no dupes
        # Per-producer order survives interleaving: each producer's
        # sequences appear in increasing order in the flattened stream.
        for n in range(producers):
            base = n * per_producer
            mine = [s for s in sequences if base <= s < base + per_producer]
            assert mine == sorted(mine)
