"""Property-based parity: the sharded broker must be observationally
identical to the serial broker.

The serial :class:`~repro.broker.broker.ThematicBroker` is the
reference oracle: deliberately boring, one event at a time, one staged
batch over the whole registry. For any random workload, shard count,
shard strategy and micro-batch size, :class:`ShardedBroker` must
produce the *same deliveries* — same per-subscriber order, same
sequence stamps, same scores, same chosen assignments, same number of
alternatives. Throughput claims mean nothing without this.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import (
    BrokerConfig,
    ShardedBroker,
    SizeBalancedSharding,
    ThematicBroker,
)
from repro.core.matcher import ThematicMatcher
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import CachedMeasure, ThematicMeasure
from tests.core.test_pipeline import events, subscriptions

workloads = st.tuples(
    st.lists(subscriptions(), min_size=1, max_size=5),
    st.lists(events(), min_size=1, max_size=6),
)


def _matcher(space, k: int, threshold: float) -> ThematicMatcher:
    return ThematicMatcher(
        CachedMeasure(ThematicMeasure(space), RelatednessCache()),
        k=k,
        threshold=threshold,
    )


def _signature(handles, event_index):
    """Everything a subscriber can observe about its delivery stream."""
    return [
        [
            (
                delivery.sequence,
                event_index[id(delivery.event)],
                delivery.score,
                delivery.result.mapping.assignment(),
                delivery.result.mapping.probability,
                delivery.result.mapping.weight,
                len(delivery.result.alternatives),
            )
            for delivery in handle.drain()
        ]
        for handle in handles
    ]


def _serial_signature(space, subs, evts, k, threshold, event_index):
    broker = ThematicBroker(_matcher(space, k, threshold))
    handles = [broker.subscribe(s) for s in subs]
    for event in evts:
        broker.publish(event)
    return _signature(handles, event_index)


def _sharded_signature(
    space, subs, evts, k, threshold, event_index, config
):
    with ShardedBroker(_matcher(space, k, threshold), config) as broker:
        handles = [broker.subscribe(s) for s in subs]
        for event in evts:
            broker.publish(event)
        assert broker.flush(timeout=60), "broker did not drain"
    return _signature(handles, event_index)


@settings(deadline=None)
@given(
    workload=workloads,
    shards=st.integers(min_value=1, max_value=8),
    max_batch=st.sampled_from((1, 2, 3, 7, 16)),
    strategy=st.sampled_from(("hash", "size")),
    k=st.sampled_from((1, 2)),
    threshold=st.sampled_from((0.0, 0.5)),
)
def test_sharded_deliveries_identical_to_serial(
    space, workload, shards, max_batch, strategy, k, threshold
):
    subs, evts = workload
    event_index = {id(event): j for j, event in enumerate(evts)}
    serial = _serial_signature(space, subs, evts, k, threshold, event_index)
    sharded = _sharded_signature(
        space,
        subs,
        evts,
        k,
        threshold,
        event_index,
        BrokerConfig(
            shards=shards, strategy=strategy, max_batch=max_batch, linger=0.0
        ),
    )
    assert sharded == serial


@settings(deadline=None, max_examples=25)
@given(workload=workloads)
def test_parity_survives_worker_pool(space, workload):
    """Same invariant with a real thread pool fanning out the shards."""
    subs, evts = workload
    event_index = {id(event): j for j, event in enumerate(evts)}
    serial = _serial_signature(space, subs, evts, 1, 0.5, event_index)
    sharded = _sharded_signature(
        space,
        subs,
        evts,
        1,
        0.5,
        event_index,
        BrokerConfig(shards=3, max_batch=4, workers=2),
    )
    assert sharded == serial


@settings(deadline=None, max_examples=25)
@given(workload=workloads, unsubscribe_at=st.integers(min_value=0, max_value=4))
def test_parity_across_unsubscribe_rebalance(space, workload, unsubscribe_at):
    """Removing a subscriber mid-stream (with size rebalancing moving
    others between shards) must not change anyone else's deliveries."""
    subs, evts = workload
    if unsubscribe_at >= len(subs):
        unsubscribe_at = len(subs) - 1
    event_index = {id(event): j for j, event in enumerate(evts)}

    def run(make_broker, flush):
        broker = make_broker()
        handles = [broker.subscribe(s) for s in subs]
        split = len(evts) // 2
        for event in evts[:split]:
            broker.publish(event)
        flush(broker)
        broker.unsubscribe(handles[unsubscribe_at])
        for event in evts[split:]:
            broker.publish(event)
        flush(broker)
        if hasattr(broker, "close"):
            broker.close()
        return _signature(
            handles[:unsubscribe_at] + handles[unsubscribe_at + 1:], event_index
        )

    serial = run(
        lambda: ThematicBroker(_matcher(space, 1, 0.5)), lambda b: None
    )
    sharded = run(
        lambda: ShardedBroker(
            _matcher(space, 1, 0.5),
            BrokerConfig(shards=3, strategy="size", max_batch=4),
        ),
        lambda b: b.flush(60),
    )
    assert sharded == serial


class TestShardingStrategies:
    def test_hash_is_stable_modulo(self):
        from repro.broker import HashSharding

        strategy = HashSharding()
        assert [strategy.assign(i, [0, 0, 0]) for i in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]
        assert strategy.rebalance([5, 0, 0]) == []

    def test_size_balanced_assign_picks_smallest(self):
        strategy = SizeBalancedSharding()
        assert strategy.assign(17, [2, 0, 1]) == 1
        assert strategy.assign(17, [1, 1, 1]) == 0  # lowest index wins ties

    def test_size_balanced_rebalance_converges(self):
        strategy = SizeBalancedSharding()
        loads = [6, 0, 3]
        moves = strategy.rebalance(loads)
        for source, target in moves:
            loads[source] -= 1
            loads[target] += 1
        assert max(loads) - min(loads) <= 1
        assert sum(loads) == 9

    def test_broker_shard_sizes_stay_balanced(self, space):
        with ShardedBroker(
            _matcher(space, 1, 0.5), BrokerConfig(shards=3, strategy="size")
        ) as broker:
            from tests.broker.test_threaded import SUBSCRIPTION

            handles = [broker.subscribe(SUBSCRIPTION) for _ in range(9)]
            assert broker.shard_sizes() == [3, 3, 3]
            for handle in handles[:4]:
                broker.unsubscribe(handle)
            sizes = broker.shard_sizes()
            assert sum(sizes) == 5
            assert max(sizes) - min(sizes) <= 1

    def test_unknown_strategy_rejected(self, space):
        import pytest

        with pytest.raises(ValueError, match="unknown shard strategy"):
            ShardedBroker(_matcher(space, 1, 0.5), BrokerConfig(strategy="nope"))


class TestShardedObservability:
    def test_metrics_snapshot_aggregates_shards(self, space):
        from tests.broker.test_threaded import EVENT, SUBSCRIPTION

        with ShardedBroker(
            _matcher(space, 1, 0.5), BrokerConfig(shards=2, max_batch=4)
        ) as broker:
            broker.subscribe(SUBSCRIPTION)
            broker.subscribe(SUBSCRIPTION)
            for _ in range(6):
                broker.publish(EVENT)
            assert broker.flush(timeout=60)
            snapshot = broker.metrics_snapshot()
        assert snapshot["published"] == 6
        assert snapshot["evaluations"] == 12
        assert set(snapshot["shards"]) == {"shard0", "shard1"}
        totals = snapshot["engine_totals"]
        assert totals["engine.evaluations"] == 12
        # Each shard processed every event of every batch.
        assert totals["engine.events_processed"] == 12
        assert snapshot["batch_size"]["count"] >= 1
        assert snapshot["batch_size"]["sum"] == 6.0
        assert snapshot["queue_wait"]["count"] == 6
        assert snapshot["pending"] == 0

    def test_replay_on_subscribe(self, space):
        from tests.broker.test_threaded import EVENT, SUBSCRIPTION

        with ShardedBroker(
            _matcher(space, 1, 0.5), BrokerConfig(shards=2)
        ) as broker:
            broker.publish(EVENT)
            broker.publish(EVENT)
            assert broker.flush(timeout=60)
            handle = broker.subscribe(SUBSCRIPTION, replay=True)
            deliveries = handle.drain()
        assert [d.sequence for d in deliveries] == [0, 1]
        assert broker.metrics.replayed == 2

    def test_callbacks_run_on_dispatcher_thread(self, space):
        from tests.broker.test_threaded import EVENT, SUBSCRIPTION

        seen = []
        with ShardedBroker(
            _matcher(space, 1, 0.5), BrokerConfig(shards=2)
        ) as broker:
            broker.subscribe(
                SUBSCRIPTION,
                lambda d: seen.append(threading.current_thread().name),
            )
            broker.publish(EVENT)
            assert broker.flush(timeout=60)
        assert seen == ["sharded-broker"]
