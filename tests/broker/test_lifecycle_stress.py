"""Lifecycle stress: both queue-backed brokers under concurrent abuse.

Publishers, subscribe/unsubscribe churn, flush polling, and close all
run at once, from many threads. The invariants under test:

* nothing deadlocks (every wait in here is bounded);
* events published before ``close`` begins are never dropped;
* ``publish`` after ``close`` raises ``RuntimeError``;
* a timed-out ``flush`` leaves no thread behind (regression for the
  daemon-thread leak in the original ``Queue.join``-based flush).
"""

import threading

import pytest

from repro.broker import BrokerConfig, ShardedBroker, ThreadedBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import CachedMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
#: One approximate predicate + threshold 0.0 below: matches every event,
#: so delivery counts are exact and drops are detectable.
CATCH_ALL = parse_subscription("({power}, {device~= laptop~})")


def _make_threaded(space):
    return ThreadedBroker(
        ThematicMatcher(
            CachedMeasure(ThematicMeasure(space), RelatednessCache()),
            threshold=0.0,
        )
    )


def _make_sharded(space):
    return ShardedBroker(
        ThematicMatcher(
            CachedMeasure(ThematicMeasure(space), RelatednessCache()),
            threshold=0.0,
        ),
        BrokerConfig(shards=3, strategy="size", max_batch=8),
    )


@pytest.fixture(params=["threaded", "sharded"])
def make_broker(request, space):
    factory = {"threaded": _make_threaded, "sharded": _make_sharded}[request.param]
    return lambda: factory(space)


PUBLISHERS = 4
EVENTS_PER_PUBLISHER = 25
CHURNERS = 3
CHURN_ROUNDS = 10


class TestConcurrentLifecycle:
    def test_no_events_dropped_under_churn(self, make_broker):
        broker = make_broker()
        stable = broker.subscribe(CATCH_ALL)
        errors = []

        def publish_all():
            try:
                for _ in range(EVENTS_PER_PUBLISHER):
                    broker.publish(EVENT)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def churn():
            try:
                for _ in range(CHURN_ROUNDS):
                    handle = broker.subscribe(CATCH_ALL)
                    broker.unsubscribe(handle)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def poll_flush():
            try:
                for _ in range(CHURN_ROUNDS):
                    broker.flush(timeout=0.01)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = (
            [threading.Thread(target=publish_all) for _ in range(PUBLISHERS)]
            + [threading.Thread(target=churn) for _ in range(CHURNERS)]
            + [threading.Thread(target=poll_flush)]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress thread hung"
        assert not errors
        assert broker.flush(timeout=120), "queue never drained"
        broker.close()
        expected = PUBLISHERS * EVENTS_PER_PUBLISHER
        deliveries = stable.drain()
        assert len(deliveries) == expected
        # Every event got a distinct sequence and arrived in order.
        sequences = [d.sequence for d in deliveries]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == expected
        assert broker.subscriber_count() == 1  # churners cleaned up

    def test_close_races_with_publishers(self, make_broker):
        broker = make_broker()
        stable = broker.subscribe(CATCH_ALL)
        successes = []
        lock = threading.Lock()
        started = threading.Barrier(PUBLISHERS + 1)

        def publish_until_closed():
            started.wait()
            count = 0
            for _ in range(200):
                try:
                    broker.publish(EVENT)
                except RuntimeError:
                    break
                count += 1
            with lock:
                successes.append(count)

        threads = [
            threading.Thread(target=publish_until_closed)
            for _ in range(PUBLISHERS)
        ]
        for thread in threads:
            thread.start()
        started.wait()  # close concurrently with the publish loops
        broker.close()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "publisher hung after close"
        with pytest.raises(RuntimeError):
            broker.publish(EVENT)
        delivered = len(stable.drain())
        total = sum(successes)
        # A publish that passed the closed check before close() set the
        # flag may enqueue after the leftover drain — at most one such
        # in-flight event per publisher thread; everything else that
        # returned successfully must have been delivered.
        assert total - PUBLISHERS <= delivered <= total

    def test_close_is_idempotent_and_reentrant(self, make_broker):
        broker = make_broker()
        threads = [threading.Thread(target=broker.close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        broker.close()


class TestFlushTimeoutLeak:
    """A timed-out flush must not leave a waiter thread behind.

    The original ``flush(timeout)`` parked a daemon thread on
    ``Queue.join()``; every timed-out call leaked one thread that never
    exited. Both brokers now wait on the queue's own condition variable.
    """

    def test_no_thread_leak_on_flush_timeout(self, make_broker):
        broker = make_broker()
        gate = threading.Event()
        broker.subscribe(CATCH_ALL, lambda delivery: gate.wait(timeout=120))
        broker.publish(EVENT)  # worker blocks in the callback
        baseline = threading.active_count()
        for _ in range(5):
            assert broker.flush(timeout=0.02) is False
        assert threading.active_count() == baseline, (
            "timed-out flush spawned threads that never exited"
        )
        gate.set()
        assert broker.flush(timeout=120) is True
        broker.close()
