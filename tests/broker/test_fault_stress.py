"""The no-loss invariant under scripted faults, for every broker front-end.

The acceptance bar for the reliability subsystem: for any
:class:`FaultPlan`, per subscriber,

    inbox deliveries + dead-letter records == fault-free matched count

on the serial, threaded, and sharded brokers alike. Hypothesis draws
the plans; :func:`repro.evaluation.run_fault_injection` runs the
experiment exactly as ``repro evaluate --faults`` does, on a fake clock
(a simulated 30-second outage costs microseconds).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker.faults import CallbackFault, FaultPlan, ScorerFault
from repro.broker.reliability import DeliveryPolicy
from repro.core.degrade import DegradedPolicy
from repro.evaluation import run_fault_injection

#: Keep each example cheap: a slice of the tiny workload is plenty to
#: exercise every retry/dead-letter path.
RUN_KWARGS = dict(max_events=30, max_subscriptions=6, seed=99)

STRESS_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def fault_plans(draw, max_subscribers=6):
    count = draw(st.integers(min_value=0, max_value=3))
    subscribers = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_subscribers - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    callbacks = []
    for subscriber in subscribers:
        kind = draw(st.sampled_from(["raise", "flaky", "hang"]))
        times = draw(st.integers(min_value=0, max_value=4))
        hang = (
            draw(st.sampled_from([0.05, 0.5, 30.0])) if kind == "hang" else 0.0
        )
        callbacks.append(
            CallbackFault(
                subscriber=subscriber, kind=kind, times=times, hang_seconds=hang
            )
        )
    scorer = draw(
        st.one_of(
            st.none(),
            st.builds(
                ScorerFault,
                spike_seconds=st.sampled_from([0.05, 0.25]),
                every=st.integers(min_value=1, max_value=4),
                start=st.integers(min_value=0, max_value=3),
            ),
        )
    )
    return FaultPlan(name="hypothesis", callbacks=tuple(callbacks), scorer=scorer)


def assert_no_loss(report):
    assert report["strict"]
    for kind, entry in report["brokers"].items():
        assert entry["no_loss"], (
            f"{kind}: accounted={entry['accounted']} "
            f"!= baseline={report['baseline']}"
        )
        assert entry["accounted"] == report["baseline"]
    assert report["no_loss"]


class TestNoLossInvariant:
    @STRESS_SETTINGS
    @given(plan=fault_plans())
    def test_arbitrary_plans(self, tiny_workload, plan):
        report = run_fault_injection(tiny_workload, plan, **RUN_KWARGS)
        assert_no_loss(report)

    @STRESS_SETTINGS
    @given(plan=fault_plans())
    def test_arbitrary_plans_with_deadline_policy(self, tiny_workload, plan):
        policy = DeliveryPolicy(
            deadline=0.1,
            max_retries=1,
            backoff_base=0.01,
            jitter=0.0,
            breaker_threshold=0,
        )
        report = run_fault_injection(
            tiny_workload, plan, policy=policy, **RUN_KWARGS
        )
        assert_no_loss(report)


class TestRepresentativePlans:
    def run(self, workload, plan, **overrides):
        kwargs = {**RUN_KWARGS, **overrides}
        return run_fault_injection(workload, plan, **kwargs)

    def test_fault_free_plan_changes_nothing(self, tiny_workload):
        report = self.run(tiny_workload, FaultPlan(name="clean"))
        assert_no_loss(report)
        for entry in report["brokers"].values():
            assert entry["dead_letters"] == [0] * report["subscriptions"]
            assert entry["retries"] == 0

    def test_permanent_failure_dead_letters_everything_for_that_sub(
        self, tiny_workload
    ):
        plan = FaultPlan(
            name="perma",
            callbacks=(CallbackFault(subscriber=0, kind="raise"),),
        )
        report = self.run(tiny_workload, plan)
        assert_no_loss(report)
        for entry in report["brokers"].values():
            assert entry["delivered"][0] == 0
            assert entry["dead_letters"][0] == report["baseline"][0]
            # Everyone else is untouched.
            assert entry["dead_letters"][1:] == [0] * (
                report["subscriptions"] - 1
            )

    def test_flaky_subscriber_recovers_via_retries(self, tiny_workload):
        plan = FaultPlan(
            name="flaky",
            callbacks=(CallbackFault(subscriber=1, kind="flaky", times=2),),
        )
        report = self.run(tiny_workload, plan)
        assert_no_loss(report)
        for entry in report["brokers"].values():
            # The first two attempts fail, retries absorb them: nothing
            # is dead-lettered and nothing is lost.
            assert entry["dead_letters"] == [0] * report["subscriptions"]
            assert entry["retries"] >= 2

    def test_hangs_with_deadline_policy_dead_letter_not_wedge(
        self, tiny_workload
    ):
        plan = FaultPlan(
            name="hang",
            callbacks=(
                CallbackFault(
                    subscriber=0, kind="hang", hang_seconds=30.0
                ),
            ),
        )
        policy = DeliveryPolicy.no_retry(
            deadline=0.5, jitter=0.0, breaker_threshold=0
        )
        report = self.run(tiny_workload, plan, policy=policy)
        assert_no_loss(report)
        for entry in report["brokers"].values():
            if report["baseline"][0]:
                assert entry["dead_letters"][0] == report["baseline"][0]

    def test_breaker_short_circuits_still_accounted(self, tiny_workload):
        plan = FaultPlan(
            name="breaker",
            callbacks=(CallbackFault(subscriber=0, kind="raise"),),
        )
        policy = DeliveryPolicy(
            max_retries=0,
            jitter=0.0,
            breaker_threshold=2,
            breaker_reset=1_000_000.0,  # never recovers within the run
        )
        report = self.run(tiny_workload, plan, policy=policy)
        assert_no_loss(report)

    def test_degraded_plan_reports_downgrade_instead_of_strict_identity(
        self, tiny_workload
    ):
        plan = FaultPlan(
            name="degraded",
            scorer=ScorerFault(spike_seconds=5.0, every=1),
            degraded=DegradedPolicy(
                latency_budget=0.5, cooldown=1_000_000.0
            ),
        )
        report = self.run(tiny_workload, plan)
        assert not report["strict"]
        assert report["no_loss"]  # vacuous under degradation, by design
        for entry in report["brokers"].values():
            assert entry["degraded"]["trips"] >= 1
            assert entry["degraded"]["batches"] >= 1

    @pytest.mark.parametrize("kind", ["serial", "threaded", "sharded"])
    def test_single_broker_selection(self, tiny_workload, kind):
        report = self.run(
            tiny_workload,
            FaultPlan(name="one"),
            brokers=(kind,),
        )
        assert list(report["brokers"]) == [kind]
        assert report["no_loss"]
