"""Broker metrics under failure and concurrency.

Covers the `callback_errors` counter path and verifies the
registry-backed snapshot API stays coherent while a producer hammers a
:class:`ThreadedBroker` from another thread.
"""

import threading

import pytest

from repro.broker.broker import BrokerMetrics, ThematicBroker
from repro.broker.threaded import ThreadedBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.obs import MetricsRegistry
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
MATCHING = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(ThematicMeasure(space))


class TestCallbackErrors:
    def test_failing_callback_counted_and_isolated(self, matcher):
        broker = ThematicBroker(matcher)

        def explode(delivery):
            raise RuntimeError("subscriber bug")

        seen = []
        broker.subscribe(MATCHING, explode)
        healthy = broker.subscribe(MATCHING, seen.append)

        assert broker.publish(EVENT) == 2
        assert broker.metrics.callback_errors == 1
        # The healthy subscriber still got its delivery.
        assert len(seen) == 1
        assert len(healthy.drain()) == 1

    def test_callback_errors_accumulate(self, matcher):
        broker = ThematicBroker(matcher)
        broker.subscribe(MATCHING, lambda d: 1 / 0)
        broker.publish(EVENT)
        broker.publish(EVENT)
        assert broker.metrics.callback_errors == 2
        assert broker.metrics.snapshot()["callback_errors"] == 2


class TestBrokerMetricsRegistry:
    def test_snapshot_matches_properties(self):
        metrics = BrokerMetrics()
        metrics.inc("published", 3)
        metrics.inc("deliveries")
        snapshot = metrics.snapshot()
        assert snapshot["published"] == metrics.published == 3
        assert snapshot["deliveries"] == metrics.deliveries == 1
        assert set(snapshot) == set(BrokerMetrics.FIELDS)

    def test_shared_registry_exposes_broker_counters(self, matcher):
        registry = MetricsRegistry()
        broker = ThematicBroker(matcher, registry=registry)
        broker.subscribe(MATCHING)
        broker.publish(EVENT)
        counters = registry.snapshot()["counters"]
        assert counters["broker.published"] == 1
        assert counters["broker.evaluations"] == 1


class TestThreadedSnapshot:
    def test_snapshot_coherent_under_concurrent_publish(self, matcher):
        events = 60
        with ThreadedBroker(matcher, max_queue=events) as broker:
            broker.subscribe(MATCHING)
            snapshots = []
            stop = threading.Event()

            def observe():
                while not stop.is_set():
                    snapshots.append(broker.metrics_snapshot())

            observer = threading.Thread(target=observe)
            observer.start()
            try:
                for _ in range(events):
                    broker.publish(EVENT)
                broker.flush()
            finally:
                stop.set()
                observer.join()
            final = broker.metrics_snapshot()

        assert final["published"] == events
        assert final["deliveries"] == events
        assert final["pending"] == 0
        assert final["queue_wait"]["count"] == events
        # Mid-flight snapshots never run backwards or overshoot.
        published = [s["published"] for s in snapshots]
        assert published == sorted(published)
        assert all(0 <= p <= events for p in published)

    def test_queue_wait_histogram_records_nonnegative(self, matcher):
        with ThreadedBroker(matcher) as broker:
            broker.subscribe(MATCHING)
            for _ in range(5):
                broker.publish(EVENT)
            broker.flush()
            wait = broker.metrics_snapshot()["queue_wait"]
        assert wait["count"] == 5
        assert wait["min"] >= 0.0
        assert wait["p99"] >= wait["p50"] >= 0.0
