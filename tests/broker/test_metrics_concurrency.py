"""Broker metrics under failure and concurrency.

Covers the `callback_errors` counter path and verifies the
registry-backed snapshot API stays coherent while a producer hammers a
:class:`ThreadedBroker` from another thread.
"""

import threading

import pytest

from repro.broker.broker import BrokerMetrics, ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.reliability import DeliveryPolicy
from repro.broker.threaded import ThreadedBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.obs import MetricsRegistry
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
MATCHING = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(ThematicMeasure(space))


#: Exactly one attempt per delivery — makes the error counts exact.
ONE_SHOT = BrokerConfig(delivery=DeliveryPolicy.no_retry(breaker_threshold=0))


class TestCallbackErrors:
    def test_failing_callback_counted_and_isolated(self, matcher):
        broker = ThematicBroker(matcher, ONE_SHOT)

        def explode(delivery):
            raise RuntimeError("subscriber bug")

        seen = []
        broker.subscribe(MATCHING, explode)
        healthy = broker.subscribe(MATCHING, seen.append)

        assert broker.publish(EVENT) == 2
        assert broker.metrics.callback_errors == 1
        # The healthy subscriber still got its delivery.
        assert len(seen) == 1
        assert len(healthy.drain()) == 1
        # The failed one was dead-lettered with the exception attached.
        records = broker.dead_letters.drain()
        assert len(records) == 1
        assert records[0].subscriber_id == 0
        assert records[0].reason == "retries_exhausted"
        assert "subscriber bug" in records[0].error
        assert "RuntimeError" in records[0].traceback

    def test_retries_multiply_callback_errors(self, matcher):
        config = BrokerConfig(
            delivery=DeliveryPolicy(max_retries=3, breaker_threshold=0)
        )
        broker = ThematicBroker(matcher, config)
        broker.subscribe(MATCHING, lambda d: 1 / 0)
        assert broker.publish(EVENT) == 1
        # 1 + 3 retries, every attempt counted.
        assert broker.metrics.callback_errors == 4
        assert broker.metrics.registry.snapshot()["counters"][
            "reliability.retries"
        ] == 3
        assert len(broker.dead_letters) == 1

    def test_callback_errors_accumulate(self, matcher):
        broker = ThematicBroker(matcher, ONE_SHOT)
        broker.subscribe(MATCHING, lambda d: 1 / 0)
        broker.publish(EVENT)
        broker.publish(EVENT)
        assert broker.metrics.callback_errors == 2
        assert broker.metrics.snapshot()["callback_errors"] == 2
        assert len(broker.dead_letters) == 2


class TestBrokerMetricsRegistry:
    def test_snapshot_matches_properties(self):
        metrics = BrokerMetrics()
        metrics.inc("published", 3)
        metrics.inc("deliveries")
        snapshot = metrics.snapshot()
        assert snapshot["published"] == metrics.published == 3
        assert snapshot["deliveries"] == metrics.deliveries == 1
        assert set(snapshot) == set(BrokerMetrics.FIELDS)

    def test_shared_registry_exposes_broker_counters(self, matcher):
        registry = MetricsRegistry()
        broker = ThematicBroker(matcher, registry=registry)
        broker.subscribe(MATCHING)
        broker.publish(EVENT)
        counters = registry.snapshot()["counters"]
        assert counters["broker.published"] == 1
        assert counters["broker.evaluations"] == 1


class TestThreadedSnapshot:
    def test_snapshot_coherent_under_concurrent_publish(self, matcher):
        events = 60
        with ThreadedBroker(matcher, BrokerConfig(max_queue=events)) as broker:
            broker.subscribe(MATCHING)
            snapshots = []
            stop = threading.Event()

            def observe():
                while not stop.is_set():
                    snapshots.append(broker.metrics_snapshot())

            observer = threading.Thread(target=observe)
            observer.start()
            try:
                for _ in range(events):
                    broker.publish(EVENT)
                broker.flush()
            finally:
                stop.set()
                observer.join()
            final = broker.metrics_snapshot()

        assert final["published"] == events
        assert final["deliveries"] == events
        assert final["pending"] == 0
        assert final["queue_wait"]["count"] == events
        # Mid-flight snapshots never run backwards or overshoot.
        published = [s["published"] for s in snapshots]
        assert published == sorted(published)
        assert all(0 <= p <= events for p in published)

    def test_queue_wait_histogram_records_nonnegative(self, matcher):
        with ThreadedBroker(matcher) as broker:
            broker.subscribe(MATCHING)
            for _ in range(5):
                broker.publish(EVENT)
            broker.flush()
            wait = broker.metrics_snapshot()["queue_wait"]
        assert wait["count"] == 5
        assert wait["min"] >= 0.0
        assert wait["p99"] >= wait["p50"] >= 0.0
