"""Tests for the threaded broker front-end."""

import threading

import pytest

from repro.broker.threaded import ThreadedBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import CachedMeasure, ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


@pytest.fixture()
def broker(space):
    with ThreadedBroker(
        ThematicMatcher(CachedMeasure(ThematicMeasure(space)))
    ) as broker:
        yield broker


class TestAsyncDelivery:
    def test_publish_returns_immediately_and_delivers(self, broker):
        handle = broker.subscribe(SUBSCRIPTION)
        broker.publish(EVENT)
        assert broker.flush(timeout=30)
        assert len(handle.drain()) == 1

    def test_many_events(self, broker):
        handle = broker.subscribe(SUBSCRIPTION)
        for _ in range(20):
            broker.publish(EVENT)
        assert broker.flush(timeout=60)
        assert len(handle.drain()) == 20
        assert broker.metrics.published == 20

    def test_callbacks_run_on_broker_thread(self, broker):
        threads = []
        broker.subscribe(
            SUBSCRIPTION, lambda d: threads.append(threading.current_thread().name)
        )
        broker.publish(EVENT)
        broker.flush(timeout=30)
        assert threads == ["thematic-broker"]

    def test_concurrent_producers(self, broker):
        handle = broker.subscribe(SUBSCRIPTION)

        def produce():
            for _ in range(10):
                broker.publish(EVENT)

        workers = [threading.Thread(target=produce) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert broker.flush(timeout=60)
        assert len(handle.drain()) == 40


class TestLifecycle:
    def test_publish_after_close_rejected(self, space):
        broker = ThreadedBroker(
            ThematicMatcher(CachedMeasure(ThematicMeasure(space)))
        )
        broker.close()
        with pytest.raises(RuntimeError):
            broker.publish(EVENT)

    def test_close_drains_queue(self, space):
        broker = ThreadedBroker(
            ThematicMatcher(CachedMeasure(ThematicMeasure(space)))
        )
        handle = broker.subscribe(SUBSCRIPTION)
        for _ in range(5):
            broker.publish(EVENT)
        broker.close()
        assert len(handle.drain()) == 5

    def test_close_idempotent(self, broker):
        broker.close()
        broker.close()

    def test_subscribe_and_unsubscribe(self, broker):
        handle = broker.subscribe(SUBSCRIPTION)
        assert broker.subscriber_count() == 1
        assert broker.unsubscribe(handle)
        assert broker.subscriber_count() == 0
