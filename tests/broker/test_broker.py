"""Tests for the single-node thematic broker."""

import threading

import pytest

from repro.broker.broker import ThematicBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
MATCHING = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)
NON_MATCHING = parse_subscription(
    "({transport}, {type= parking space occupied event~, street= main street})"
)


@pytest.fixture()
def broker(space):
    return ThematicBroker(ThematicMatcher(ThematicMeasure(space)))


class TestPubSub:
    def test_delivery_to_matching_subscriber(self, broker):
        handle = broker.subscribe(MATCHING)
        other = broker.subscribe(NON_MATCHING)
        assert broker.publish(EVENT) == 1
        deliveries = handle.drain()
        assert len(deliveries) == 1
        assert deliveries[0].event == EVENT
        assert deliveries[0].score > 0
        assert other.drain() == []

    def test_callback_invoked(self, broker):
        seen = []
        broker.subscribe(MATCHING, seen.append)
        broker.publish(EVENT)
        assert len(seen) == 1

    def test_drain_empties_inbox(self, broker):
        handle = broker.subscribe(MATCHING)
        broker.publish(EVENT)
        assert handle.drain()
        assert handle.drain() == []

    def test_unsubscribe(self, broker):
        handle = broker.subscribe(MATCHING)
        assert broker.unsubscribe(handle)
        broker.publish(EVENT)
        assert handle.drain() == []
        assert not broker.unsubscribe(handle)

    def test_space_decoupling_multiple_subscribers(self, broker):
        handles = [broker.subscribe(MATCHING) for _ in range(3)]
        assert broker.publish(EVENT) == 3
        for handle in handles:
            assert len(handle.drain()) == 1


class TestTimeDecoupling:
    def test_replay_catches_up_late_subscriber(self, broker):
        broker.publish(EVENT)
        late = broker.subscribe(MATCHING, replay=True)
        deliveries = late.drain()
        assert len(deliveries) == 1
        assert broker.metrics.replayed == 1

    def test_no_replay_by_default(self, broker):
        broker.publish(EVENT)
        late = broker.subscribe(MATCHING)
        assert late.drain() == []

    def test_replay_capacity_bounds_buffer(self, space):
        from repro.broker import BrokerConfig

        broker = ThematicBroker(
            ThematicMatcher(ThematicMeasure(space)),
            BrokerConfig(replay_capacity=1),
        )
        first = parse_event("({energy}, {type: increased energy usage event, device: laptop, office: room 112})")
        broker.publish(first)
        broker.publish(EVENT)
        late = broker.subscribe(MATCHING, replay=True)
        deliveries = late.drain()
        assert len(deliveries) == 1
        assert deliveries[0].event == EVENT


class TestReentrantCallbacks:
    """Callbacks run with no reliability lock held, so they may call
    back into their own broker — these are regressions for a deadlock
    where dispatch held the breaker lock across callback execution."""

    def run_with_deadline(self, target):
        worker = threading.Thread(target=target, daemon=True)
        worker.start()
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "re-entrant callback deadlocked"

    def test_callback_may_publish(self, broker):
        seen = []

        def republisher(delivery):
            seen.append(delivery)
            if len(seen) == 1:
                broker.publish(EVENT)

        broker.subscribe(MATCHING, republisher)
        self.run_with_deadline(lambda: broker.publish(EVENT))
        assert len(seen) == 2
        assert len(broker.dead_letters) == 0

    def test_callback_may_subscribe_with_replay(self, broker):
        late_seen = []
        registered = []

        def registrar(delivery):
            if not registered:
                registered.append(
                    broker.subscribe(MATCHING, late_seen.append, replay=True)
                )

        broker.subscribe(MATCHING, registrar)
        self.run_with_deadline(lambda: broker.publish(EVENT))
        # The published event was in the replay buffer already, so the
        # callback-registered subscriber was caught up via its own
        # reliable dispatch path.
        assert len(late_seen) == 1
        assert len(registered[0].drain()) == 1


class TestMetrics:
    def test_counters(self, broker):
        broker.subscribe(MATCHING)
        broker.subscribe(NON_MATCHING)
        broker.publish(EVENT)
        assert broker.metrics.published == 1
        assert broker.metrics.evaluations == 2
        assert broker.metrics.deliveries == 1

    def test_sequence_numbers_increase(self, broker):
        handle = broker.subscribe(MATCHING)
        broker.publish(EVENT)
        broker.publish(EVENT)
        sequences = [d.sequence for d in handle.drain()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == 2
