"""The typed BrokerConfig and the legacy-keyword deprecation shims."""

import warnings

import pytest

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig, config_from_legacy
from repro.broker.reliability import DeliveryPolicy
from repro.broker.sharded import ShardedBroker
from repro.broker.threaded import ThreadedBroker
from repro.core.engine import EngineConfig, ThematicEventEngine
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure


@pytest.fixture()
def matcher(space):
    return ThematicMatcher(ThematicMeasure(space))


class TestBrokerConfig:
    def test_defaults(self):
        config = BrokerConfig()
        assert config.replay_capacity == 256
        assert config.shards == 4
        assert config.strategy == "hash"
        assert config.delivery == DeliveryPolicy()
        assert config.degraded is None
        assert config.dead_letter_capacity is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BrokerConfig().shards = 8

    def test_one_config_fits_every_front_end(self, matcher):
        """A single config object constructs all three brokers."""
        config = BrokerConfig(replay_capacity=8, shards=2, max_batch=4,
                              linger=0.0, workers=0)
        serial = ThematicBroker(matcher, config)
        threaded = ThreadedBroker(matcher, config)
        sharded = ShardedBroker(matcher, config)
        try:
            assert serial.reliability.policy == config.delivery
            assert threaded.reliability.policy == config.delivery
            assert sharded.reliability.policy == config.delivery
        finally:
            threaded.close()
            sharded.close()


class TestLegacyShim:
    def test_no_legacy_passes_config_through(self):
        config = BrokerConfig(shards=7)
        assert config_from_legacy(config, ("shards",), {}) is config

    def test_none_config_defaults(self):
        assert config_from_legacy(None, ("shards",), {}) == BrokerConfig()

    def test_unknown_keyword_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            config_from_legacy(None, ("shards",), {"shard_count": 2})

    def test_legacy_keys_overlay_with_warning(self):
        with pytest.warns(DeprecationWarning):
            config = config_from_legacy(None, ("shards",), {"shards": 9})
        assert config.shards == 9

    def test_serial_broker_legacy_replay_capacity(self, matcher):
        with pytest.warns(DeprecationWarning):
            broker = ThematicBroker(matcher, replay_capacity=3)
        assert broker.config.replay_capacity == 3

    def test_serial_broker_rejects_unknown_kwargs(self, matcher):
        with pytest.raises(TypeError):
            ThematicBroker(matcher, replay=3)

    def test_threaded_broker_legacy_max_queue(self, matcher):
        with pytest.warns(DeprecationWarning):
            broker = ThreadedBroker(matcher, max_queue=5)
        with broker:
            assert broker.config.max_queue == 5

    def test_sharded_broker_legacy_kwargs(self, matcher):
        with pytest.warns(DeprecationWarning):
            broker = ShardedBroker(matcher, shards=2, max_batch=4, workers=0)
        with broker:
            assert broker.config.shards == 2
            assert broker.config.max_batch == 4

    def test_configured_brokers_emit_no_warning(self, matcher):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ThematicBroker(matcher, BrokerConfig())

    def test_engine_legacy_prefilter_kwarg(self, matcher):
        with pytest.warns(DeprecationWarning):
            engine = ThematicEventEngine(matcher, prefilter=False)
        assert engine.config == EngineConfig(prefilter=False)

    def test_engine_rejects_unknown_kwargs(self, matcher):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ThematicEventEngine(matcher, prefiler=True)


class TestShardedValidation:
    def test_invalid_shards_rejected(self, matcher):
        with pytest.raises(ValueError, match="shards"):
            ShardedBroker(matcher, BrokerConfig(shards=0))

    def test_invalid_max_batch_rejected(self, matcher):
        with pytest.raises(ValueError, match="max_batch"):
            ShardedBroker(matcher, BrokerConfig(max_batch=0))

    def test_unknown_strategy_rejected(self, matcher):
        with pytest.raises(ValueError):
            ShardedBroker(matcher, BrokerConfig(strategy="modulo"))
