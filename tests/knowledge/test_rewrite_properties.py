"""Property tests for canonicalization (the ground truth's foundation).

The relevance ground truth is only *exact* (Section 5.2.3) if
canonical-form equality is a genuine equivalence relation that expansion
cannot escape. These properties pin that down over the real thesaurus.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.knowledge.eurovoc import default_thesaurus
from repro.knowledge.rewrite import Canonicalizer, find_term_spans, single_replacements

THESAURUS = default_thesaurus()
CANON = Canonicalizer(THESAURUS)
VOCAB = sorted(THESAURUS.vocabulary())

terms = st.sampled_from(VOCAB)
texts = st.lists(terms, min_size=1, max_size=3).map(" ".join)

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEquivalenceRelation:
    @COMMON
    @given(texts)
    def test_reflexive(self, text):
        assert CANON.equivalent(text, text)

    @COMMON
    @given(texts, texts)
    def test_symmetric(self, a, b):
        assert CANON.equivalent(a, b) == CANON.equivalent(b, a)

    @COMMON
    @given(texts, texts, texts)
    def test_transitive(self, a, b, c):
        if CANON.equivalent(a, b) and CANON.equivalent(b, c):
            assert CANON.equivalent(a, c)

    @COMMON
    @given(texts)
    def test_canonicalize_idempotent(self, text):
        once = CANON.canonicalize(text)
        assert CANON.canonicalize(once) == once


class TestExpansionClosure:
    """Whatever expansion can produce, canonicalization undoes."""

    @COMMON
    @given(terms, st.integers(0, 2**31))
    def test_single_replacement_equivalent(self, term, seed):
        variants = single_replacements(term, THESAURUS)
        if not variants:
            return
        variant = random.Random(seed).choice(variants)
        assert CANON.equivalent(term, variant), (term, variant)

    @COMMON
    @given(texts, st.integers(0, 2**31))
    def test_embedded_replacement_equivalent(self, text, seed):
        rng = random.Random(seed)
        spans = find_term_spans(text, THESAURUS)
        if not spans:
            return
        span = rng.choice(spans)
        from repro.knowledge.rewrite import replace_span

        rewritten = replace_span(text, span, rng.choice(span.replacements))
        assert CANON.equivalent(text, rewritten), (text, rewritten)


class TestSpanInvariants:
    @COMMON
    @given(texts)
    def test_spans_ordered_and_disjoint(self, text):
        spans = find_term_spans(text, THESAURUS)
        for left, right in zip(spans, spans[1:], strict=False):
            assert left.end <= right.start

    @COMMON
    @given(texts)
    def test_span_bounds_within_text(self, text):
        tokens = text.split()
        for span in find_term_spans(text, THESAURUS):
            assert 0 <= span.start < span.end <= len(tokens)
