"""Tests for span recognition, rewriting, and canonicalization."""

import pytest

from repro.knowledge.rewrite import (
    Canonicalizer,
    find_term_spans,
    replace_span,
    single_replacements,
)
from repro.semantics.tokenize import normalize_term


class TestFindTermSpans:
    def test_finds_multiword_term(self, thesaurus):
        spans = find_term_spans(
            "increased energy consumption event", thesaurus
        )
        terms = {span.term for span in spans}
        assert "energy consumption" in terms
        assert "increased" in terms

    def test_longest_match_wins(self, thesaurus):
        spans = find_term_spans("energy consumption", thesaurus)
        assert any(span.term == "energy consumption" for span in spans)
        # 'energy' alone must not be matched inside the longer span.
        assert not any(span.term == "energy" for span in spans)

    def test_spans_do_not_overlap(self, thesaurus):
        spans = find_term_spans(
            "increased energy consumption event in galway city", thesaurus
        )
        for left, right in zip(spans, spans[1:], strict=False):
            assert left.end <= right.start

    def test_unknown_text_has_no_spans(self, thesaurus):
        assert find_term_spans("zebra quagga xylophone", thesaurus) == ()

    def test_domain_restriction(self, thesaurus):
        spans = find_term_spans("parking", thesaurus, domains=["energy"])
        assert spans == ()

    def test_replacements_exclude_self(self, thesaurus):
        spans = find_term_spans("parking", thesaurus)
        for span in spans:
            assert span.term not in span.replacements


class TestReplaceSpan:
    def test_roundtrip(self, thesaurus):
        text = "increased energy consumption event"
        span = next(
            s for s in find_term_spans(text, thesaurus)
            if s.term == "energy consumption"
        )
        rewritten = replace_span(text, span, "electricity usage")
        assert rewritten == "increased electricity usage event"


class TestSingleReplacements:
    def test_variants_differ_from_original(self, thesaurus):
        variants = single_replacements("energy consumption", thesaurus)
        assert variants
        assert normalize_term("energy consumption") not in variants

    def test_variants_unique(self, thesaurus):
        variants = single_replacements(
            "increased energy consumption event", thesaurus
        )
        assert len(variants) == len(set(variants))

    def test_unknown_text_yields_nothing(self, thesaurus):
        assert single_replacements("zebra", thesaurus) == ()


class TestCanonicalizer:
    @pytest.fixture(scope="class")
    def canon(self, thesaurus):
        return Canonicalizer(thesaurus)

    def test_synonyms_equivalent(self, canon):
        assert canon.equivalent("energy consumption", "electricity usage")

    def test_related_terms_equivalent(self, canon):
        # 'garage' is related to 'parking' and its own concept; expansion
        # may replace one with the other, so the ground truth must too.
        assert canon.equivalent("parking", "garage")

    def test_contrasts_not_equivalent(self, canon):
        assert not canon.equivalent("increased", "decreased")
        assert not canon.equivalent("occupied", "free")
        assert not canon.equivalent("galway", "dublin")

    def test_embedded_spans_canonicalize(self, canon):
        assert canon.equivalent(
            "increased energy consumption event",
            "rising electricity usage event",
        )

    def test_unknown_tokens_preserved(self, canon):
        assert not canon.equivalent("room 112", "room 113")
        assert canon.equivalent("room 112", "indoor space 112")

    def test_canonical_term_is_fixed_point(self, canon, thesaurus):
        for term in list(thesaurus.vocabulary())[:50]:
            rep = canon.canonical_term(term)
            assert canon.canonical_term(rep) == rep

    def test_canonicalize_idempotent(self, canon):
        text = "increased energy consumption event"
        once = canon.canonicalize(text)
        assert canon.canonicalize(once) == once

    def test_resegmenting_replacement_stays_equivalent(self, canon):
        # Replacing "city bus" with its related term "bus" makes the
        # preceding standalone "city" token merge into a *new* "city
        # bus" span on the next recognition pass. Canonicalization must
        # iterate to a fixed point for the two texts to stay equivalent.
        assert canon.equivalent("ac unit city city bus", "ac unit city bus")
        fixed = canon.canonicalize("city city bus")
        assert canon.canonicalize(fixed) == fixed

    def test_equivalence_is_symmetric(self, canon):
        pairs = [
            ("computer", "laptop"),
            ("galway", "galway city"),
            ("kilowatt hour", "kwh"),
        ]
        for a, b in pairs:
            assert canon.equivalent(a, b) == canon.equivalent(b, a)
