"""Integrity tests for the bundled six-domain EuroVoc-like dataset."""

from repro.knowledge.corpus import FOCUS_TERMS, UNIVERSAL_CONCEPTS
from repro.knowledge.eurovoc import (
    AFFINITIES,
    CONTRAST_PAIRS,
    DOMAINS,
    build_eurovoc,
    default_thesaurus,
)
from repro.semantics.tokenize import normalize_term


def test_has_the_papers_six_domains(thesaurus):
    assert thesaurus.domains() == DOMAINS
    assert len(DOMAINS) == 6


def test_every_domain_has_enough_top_terms_for_themes(thesaurus):
    # The evaluation samples theme sets of up to 30 tags (Section 5.2.4).
    assert len(thesaurus.top_terms()) >= 30
    for domain in thesaurus.domains():
        assert len(thesaurus.micro(domain).top_terms) >= 8


def test_top_terms_unique(thesaurus):
    tops = [normalize_term(t) for t in thesaurus.top_terms()]
    assert len(tops) == len(set(tops))


def test_concepts_have_alternatives(thesaurus):
    # Expansion needs synonyms; most concepts must offer at least one.
    missing = [
        concept.preferred
        for domain in thesaurus.domains()
        for concept in thesaurus.micro(domain).concepts
        if not concept.alternatives
    ]
    assert not missing, missing


def test_affinities_reference_real_concepts(thesaurus):
    for (dom_a, pref_a), (dom_b, pref_b) in AFFINITIES:
        assert any(
            c.preferred == pref_a for c in thesaurus.micro(dom_a).concepts
        ), (dom_a, pref_a)
        assert any(
            c.preferred == pref_b for c in thesaurus.micro(dom_b).concepts
        ), (dom_b, pref_b)


def test_contrast_pairs_reference_real_concepts(thesaurus):
    for (dom_a, pref_a), (dom_b, pref_b) in CONTRAST_PAIRS:
        assert any(
            c.preferred == pref_a for c in thesaurus.micro(dom_a).concepts
        ), (dom_a, pref_a)
        assert any(
            c.preferred == pref_b for c in thesaurus.micro(dom_b).concepts
        ), (dom_b, pref_b)


def test_contrast_pairs_are_not_synonyms(thesaurus):
    for (_, pref_a), (_, pref_b) in CONTRAST_PAIRS:
        assert not thesaurus.synonymous(pref_a, pref_b), (pref_a, pref_b)


def test_focus_terms_resolve_to_concepts(thesaurus):
    for term in FOCUS_TERMS:
        assert thesaurus.concepts_of(term), term


def test_universal_concepts_exist(thesaurus):
    for term in UNIVERSAL_CONCEPTS:
        assert thesaurus.concepts_of(term), term


def test_build_returns_fresh_instances():
    assert build_eurovoc() is not build_eurovoc()


def test_default_is_cached_singleton():
    assert default_thesaurus() is default_thesaurus()


def test_qualifier_rings_cover_event_qualifiers(thesaurus):
    # The seed generator's qualifiers must be expandable concepts.
    for qualifier in ("increased", "decreased", "high", "low"):
        assert thesaurus.expansions(qualifier), qualifier


def test_running_example_vocabulary_present(thesaurus):
    # Terms from the paper's running example (Sections 2.1 and 3).
    for term in ("energy consumption", "kilowatt hour", "computer", "laptop"):
        assert term in thesaurus, term
    assert "laptop" in thesaurus.expansions("computer")
