"""Tests for the synthetic corpus generator."""

from repro.knowledge.corpus import CorpusConfig, build_corpus
from repro.semantics.tokenize import tokenize


def kinds_of(corpus):
    out = {}
    for doc in corpus:
        kind = doc.name.split("/")[0]
        out.setdefault(kind, []).append(doc)
    return out


class TestDeterminism:
    def test_same_config_same_corpus(self, thesaurus):
        a = build_corpus(thesaurus, CorpusConfig())
        b = build_corpus(thesaurus, CorpusConfig())
        assert a.names() == b.names()
        assert [d.text for d in a] == [d.text for d in b]

    def test_different_seed_different_corpus(self, thesaurus):
        a = build_corpus(thesaurus, CorpusConfig(seed=1))
        b = build_corpus(thesaurus, CorpusConfig(seed=2))
        assert [d.text for d in a] != [d.text for d in b]


class TestComposition:
    def test_all_document_kinds_present(self, corpus, thesaurus):
        kinds = kinds_of(corpus)
        for expected in ("bridge", "confuser", "contrast", "general", "noise"):
            assert expected in kinds, expected
        for domain in thesaurus.domains():
            assert domain in kinds
        assert any("/overview/" in doc.name for doc in corpus)

    def test_concept_docs_count(self, thesaurus):
        config = CorpusConfig(docs_per_concept=2)
        corpus = build_corpus(thesaurus, config)
        kinds = kinds_of(corpus)
        for domain in thesaurus.domains():
            per_concept = {}
            for doc in kinds[domain]:
                per_concept.setdefault(doc.name.rsplit("/", 1)[0], 0)
                per_concept[doc.name.rsplit("/", 1)[0]] += 1
            assert min(per_concept.values()) >= 2

    def test_every_thesaurus_term_is_indexed(self, corpus, thesaurus):
        # Coverage: every synonym-ring term must tokenize into at least
        # one token present in the corpus (else its vector is zero and
        # semantic expansion produces unmatchable events).
        vocabulary = set()
        for doc in corpus:
            vocabulary.update(doc.tokens())
        missing = [
            term
            for term in thesaurus.vocabulary()
            if not any(tok in vocabulary for tok in tokenize(term))
        ]
        assert not missing, missing

    def test_contrast_and_confuser_docs_carry_no_top_terms(
        self, corpus, thesaurus
    ):
        # The thematic advantage requires these documents to fall outside
        # every thematic basis built from *full* top-term phrases.
        top_phrases = {t for t in thesaurus.top_terms()}
        for doc in corpus:
            kind = doc.name.split("/")[0]
            if kind in ("confuser", "contrast", "noise"):
                text = " ".join(doc.tokens())
                for phrase in top_phrases:
                    joined = " ".join(tokenize(phrase))
                    assert joined not in text or len(joined.split()) == 1

    def test_noise_docs_only_filler(self, corpus, thesaurus):
        ring_tokens = set()
        for term in thesaurus.vocabulary():
            ring_tokens.update(tokenize(term))
        for doc in corpus:
            if doc.name.startswith("noise/"):
                assert not (set(doc.tokens()) & ring_tokens)


class TestScaling:
    def test_paper_scale_is_larger(self, thesaurus, corpus):
        paper = build_corpus(thesaurus, CorpusConfig.paper_scale())
        assert len(paper) > len(corpus)

    def test_zero_optional_docs(self, thesaurus):
        config = CorpusConfig(
            confuser_docs=0,
            noise_docs=0,
            general_docs=0,
            contrast_docs_per_pair=0,
            bridge_docs_per_affinity=0,
        )
        corpus = build_corpus(thesaurus, config)
        kinds = kinds_of(corpus)
        assert "confuser" not in kinds
        assert "noise" not in kinds
