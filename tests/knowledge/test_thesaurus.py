"""Unit tests for the thesaurus structures."""

import pytest

from repro.knowledge.thesaurus import Concept, MicroThesaurus, Thesaurus


def make_thesaurus():
    transport = MicroThesaurus(
        name="transport",
        top_terms=("transport", "land transport"),
        concepts=(
            Concept("parking", ("car park", "parking lot"), ("garage",)),
            Concept("garage", ("carport",)),
            Concept("vehicle", ("car", "automobile")),
        ),
    )
    energy = MicroThesaurus(
        name="energy",
        top_terms=("energy",),
        concepts=(
            Concept("energy consumption", ("electricity usage",)),
            Concept("parking", ("vehicle storage",)),  # cross-domain homonym
        ),
    )
    return Thesaurus((transport, energy))


@pytest.fixture()
def small():
    return make_thesaurus()


class TestConcept:
    def test_terms(self):
        c = Concept("a", ("b", "c"), ("d",))
        assert c.terms() == ("a", "b", "c")
        assert c.expansion_terms() == ("a", "b", "c", "d")

    def test_rejects_empty_preferred(self):
        with pytest.raises(ValueError):
            Concept("  ")


class TestMicroThesaurus:
    def test_rejects_missing_top_terms(self):
        with pytest.raises(ValueError):
            MicroThesaurus(name="x", top_terms=(), concepts=())

    def test_rejects_duplicate_concepts(self):
        with pytest.raises(ValueError, match="duplicate concept"):
            MicroThesaurus(
                name="x",
                top_terms=("t",),
                concepts=(Concept("a"), Concept("A ")),
            )

    def test_all_terms(self, small):
        terms = small.micro("transport").all_terms()
        assert "parking" in terms and "car park" in terms
        assert "garage" in terms  # its own concept


class TestThesaurus:
    def test_rejects_duplicate_domains(self):
        micro = MicroThesaurus("x", ("t",), (Concept("a"),))
        with pytest.raises(ValueError):
            Thesaurus((micro, micro))

    def test_domains_in_order(self, small):
        assert small.domains() == ("transport", "energy")

    def test_concepts_of_spans_domains(self, small):
        hits = small.concepts_of("parking")
        assert {domain for domain, _ in hits} == {"transport", "energy"}

    def test_concepts_of_restricted(self, small):
        hits = small.concepts_of("parking", domains=["energy"])
        assert len(hits) == 1

    def test_expansions_exclude_self(self, small):
        assert "parking" not in small.expansions("parking")

    def test_expansions_include_synonyms_and_related(self, small):
        expansions = small.expansions("parking", domains=["transport"])
        assert "car park" in expansions
        assert "garage" in expansions

    def test_expansions_without_related(self, small):
        expansions = small.expansions(
            "parking", domains=["transport"], include_related=False
        )
        assert "garage" not in expansions

    def test_expansions_for_unknown_term(self, small):
        assert small.expansions("zebra") == ()

    def test_expansions_normalized_lookup(self, small):
        assert small.expansions("  Parking ") != ()

    def test_synonymous(self, small):
        assert small.synonymous("car park", "parking lot")
        assert small.synonymous("parking", "car park")
        assert not small.synonymous("car park", "automobile")

    def test_top_terms(self, small):
        assert small.top_terms() == ("transport", "land transport", "energy")
        assert small.top_terms(["energy"]) == ("energy",)

    def test_vocabulary_and_contains(self, small):
        assert "car park" in small
        assert "zebra" not in small
        assert "parking lot" in small.vocabulary()

    def test_len_counts_concepts(self, small):
        assert len(small) == 5
