"""The allowlist: narrow matching, mandatory reasons, stale detection."""

import pytest

from repro.analysis import (
    AllowEntry,
    AllowlistError,
    Finding,
    load_allowlist,
)
from repro.analysis.allowlist import apply_allowlist

LOCK_FINDING = Finding(
    path="src/repro/broker/threaded.py",
    line=10,
    rule="RL100",
    message="lock held across callback",
    symbol="ThreadedBroker._run",
)


def _write(tmp_path, text):
    path = tmp_path / "allow.toml"
    path.write_text(text, encoding="utf-8")
    return path


class TestLoading:
    def test_well_formed_entry(self, tmp_path):
        entries = load_allowlist(
            _write(
                tmp_path,
                '[[allow]]\nrules = ["RL100", "RL101"]\n'
                'path = "src/repro/broker/threaded.py"\n'
                'symbol = "ThreadedBroker._run"\n'
                'reason = "serialization point, RLock"\n',
            )
        )
        assert entries == [
            AllowEntry(
                rules=("RL100", "RL101"),
                path="src/repro/broker/threaded.py",
                symbol="ThreadedBroker._run",
                reason="serialization point, RLock",
            )
        ]

    def test_singular_rule_key_accepted(self, tmp_path):
        entries = load_allowlist(
            _write(
                tmp_path,
                '[[allow]]\nrule = "RL300"\npath = "a.py"\nreason = "ok"\n',
            )
        )
        assert entries[0].rules == ("RL300",)

    def test_missing_reason_is_an_error(self, tmp_path):
        path = _write(
            tmp_path, '[[allow]]\nrules = ["RL100"]\npath = "a.py"\n'
        )
        with pytest.raises(AllowlistError, match="reason"):
            load_allowlist(path)

    def test_blank_reason_is_an_error(self, tmp_path):
        path = _write(
            tmp_path,
            '[[allow]]\nrules = ["RL100"]\npath = "a.py"\nreason = "  "\n',
        )
        with pytest.raises(AllowlistError, match="reason"):
            load_allowlist(path)

    def test_invalid_toml_is_an_error(self, tmp_path):
        with pytest.raises(AllowlistError, match="TOML"):
            load_allowlist(_write(tmp_path, "[[allow\n"))

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(AllowlistError, match="cannot read"):
            load_allowlist(tmp_path / "nope.toml")


class TestMatching:
    def _entry(self, **overrides):
        base = dict(
            rules=("RL100",),
            path="src/repro/broker/threaded.py",
            symbol="ThreadedBroker._run",
            reason="x",
        )
        base.update(overrides)
        return AllowEntry(**base)

    def test_exact_match_suppresses(self):
        kept, suppressed, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry()]
        )
        assert kept == [] and suppressed == [LOCK_FINDING] and stale == []

    def test_wrong_symbol_does_not_match(self):
        kept, suppressed, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry(symbol="ThreadedBroker.close")]
        )
        assert kept == [LOCK_FINDING]
        assert [f.rule for f in stale] == ["RL000"]

    def test_empty_symbol_matches_any_symbol(self):
        kept, suppressed, _ = apply_allowlist(
            [LOCK_FINDING], [self._entry(symbol="")]
        )
        assert suppressed == [LOCK_FINDING] and kept == []

    def test_wrong_rule_does_not_match(self):
        kept, _, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry(rules=("RL102",))]
        )
        assert kept == [LOCK_FINDING] and len(stale) == 1

    def test_stale_entry_names_itself(self):
        _, _, stale = apply_allowlist([], [self._entry()])
        assert stale[0].path == ".repro-lint.toml"
        assert "ThreadedBroker._run" in stale[0].message
