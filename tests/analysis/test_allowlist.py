"""The allowlist: narrow matching, mandatory reasons, stale detection."""

import pytest

from repro.analysis import (
    AllowEntry,
    AllowlistError,
    Finding,
    load_allowlist,
)
from repro.analysis.allowlist import apply_allowlist, check_growth

LOCK_FINDING = Finding(
    path="src/repro/broker/threaded.py",
    line=10,
    rule="RL100",
    message="lock held across callback",
    symbol="ThreadedBroker._run",
)


def _write(tmp_path, text):
    path = tmp_path / "allow.toml"
    path.write_text(text, encoding="utf-8")
    return path


class TestLoading:
    def test_well_formed_entry(self, tmp_path):
        entries = load_allowlist(
            _write(
                tmp_path,
                '[[allow]]\nrules = ["RL100", "RL101"]\n'
                'path = "src/repro/broker/threaded.py"\n'
                'symbol = "ThreadedBroker._run"\n'
                'reason = "serialization point, RLock"\n',
            )
        )
        assert entries == [
            AllowEntry(
                rules=("RL100", "RL101"),
                path="src/repro/broker/threaded.py",
                symbol="ThreadedBroker._run",
                reason="serialization point, RLock",
            )
        ]

    def test_singular_rule_key_accepted(self, tmp_path):
        entries = load_allowlist(
            _write(
                tmp_path,
                '[[allow]]\nrule = "RL300"\npath = "a.py"\nreason = "ok"\n',
            )
        )
        assert entries[0].rules == ("RL300",)

    def test_missing_reason_is_an_error(self, tmp_path):
        path = _write(
            tmp_path, '[[allow]]\nrules = ["RL100"]\npath = "a.py"\n'
        )
        with pytest.raises(AllowlistError, match="reason"):
            load_allowlist(path)

    def test_blank_reason_is_an_error(self, tmp_path):
        path = _write(
            tmp_path,
            '[[allow]]\nrules = ["RL100"]\npath = "a.py"\nreason = "  "\n',
        )
        with pytest.raises(AllowlistError, match="reason"):
            load_allowlist(path)

    def test_invalid_toml_is_an_error(self, tmp_path):
        with pytest.raises(AllowlistError, match="TOML"):
            load_allowlist(_write(tmp_path, "[[allow\n"))

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(AllowlistError, match="cannot read"):
            load_allowlist(tmp_path / "nope.toml")


class TestMatching:
    def _entry(self, **overrides):
        base = dict(
            rules=("RL100",),
            path="src/repro/broker/threaded.py",
            symbol="ThreadedBroker._run",
            reason="x",
        )
        base.update(overrides)
        return AllowEntry(**base)

    def test_exact_match_suppresses(self):
        kept, suppressed, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry()]
        )
        assert kept == [] and suppressed == [LOCK_FINDING] and stale == []

    def test_wrong_symbol_does_not_match(self):
        kept, suppressed, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry(symbol="ThreadedBroker.close")]
        )
        assert kept == [LOCK_FINDING]
        assert [f.rule for f in stale] == ["RL000"]

    def test_empty_symbol_matches_any_symbol(self):
        kept, suppressed, _ = apply_allowlist(
            [LOCK_FINDING], [self._entry(symbol="")]
        )
        assert suppressed == [LOCK_FINDING] and kept == []

    def test_wrong_rule_does_not_match(self):
        kept, _, stale = apply_allowlist(
            [LOCK_FINDING], [self._entry(rules=("RL102",))]
        )
        assert kept == [LOCK_FINDING] and len(stale) == 1

    def test_stale_entry_names_itself(self):
        _, _, stale = apply_allowlist([], [self._entry()])
        assert stale[0].path == ".repro-lint.toml"
        assert "ThreadedBroker._run" in stale[0].message


class TestGrowth:
    def _entry(self, path="src/a.py", symbol="f", reason="because A"):
        return AllowEntry(
            rules=("RL100",), path=path, symbol=symbol, reason=reason
        )

    def test_no_growth_no_problems(self):
        base = [self._entry()]
        added, problems = check_growth(base, list(base))
        assert added == [] and problems == []

    def test_shrinking_is_always_fine(self):
        added, problems = check_growth([self._entry()], [])
        assert added == [] and problems == []

    def test_added_entry_with_its_own_reason_is_reported_not_failed(self):
        base = [self._entry()]
        new = self._entry(path="src/b.py", reason="because B, reviewed")
        added, problems = check_growth(base, [*base, new])
        assert added == [new] and problems == []

    def test_copy_pasted_reason_is_a_problem(self):
        base = [self._entry()]
        clone = self._entry(path="src/b.py", reason="because A")
        added, problems = check_growth(base, [*base, clone])
        assert added == [clone]
        assert len(problems) == 1 and "verbatim" in problems[0]

    def test_rekeyed_entry_counts_as_growth(self):
        # Renaming the symbol is a new suppression: the old key is gone
        # (and will go stale), the new one must stand on its own.
        base = [self._entry(symbol="f")]
        moved = self._entry(symbol="g")
        added, _ = check_growth(base, [moved])
        assert added == [moved]

    def test_empty_base_means_every_entry_is_growth(self):
        head = [self._entry(), self._entry(path="src/b.py", reason="B")]
        added, problems = check_growth([], head)
        assert added == head and problems == []
