"""Every lint rule id must fire on its known-bad fixture.

Each fixture under ``fixtures/`` reproduces one incident class (the
lock-scope/lock-order ones are the PR-4 deadlock shapes); these tests
pin that the checkers keep catching them. The companion
``test_clean_tree`` pins the other direction: zero findings on the
real source tree.
"""

from pathlib import Path

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers import (
    api_surface,
    clock_discipline,
    lock_order,
    lock_scope,
    metrics_manifest,
)
from repro.analysis.project import load_modules

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: Manifest stand-in for the metrics fixture: one counter plus one
#: wildcard family, mirroring the real manifest's shapes.
EXACT = {"broker.published": "counter"}
WILDCARDS = {"stage.": "histogram"}


def _load(name):
    modules = load_modules(FIXTURES, [FIXTURES / name])
    assert modules, f"fixture {name} failed to parse"
    return modules, CallGraph(modules)


def _rules(findings):
    return {f.rule for f in findings}


class TestLockScopeFixture:
    def test_trips_all_three_rules(self):
        modules, graph = _load("bad_lock_scope.py")
        findings = lock_scope.check(modules, graph)
        assert _rules(findings) == {"RL100", "RL101", "RL102"}

    def test_direct_callback_under_lock(self):
        modules, graph = _load("bad_lock_scope.py")
        findings = lock_scope.check(modules, graph)
        direct = [
            f
            for f in findings
            if f.rule == "RL100" and f.symbol == "BadDispatcher.deliver"
        ]
        assert len(direct) == 1
        assert "_dispatch_lock" in direct[0].message

    def test_callback_reached_through_call_graph(self):
        """The PR-4 shape: the callback hides one call deep."""
        modules, graph = _load("bad_lock_scope.py")
        findings = lock_scope.check(modules, graph)
        indirect = [
            f
            for f in findings
            if f.rule == "RL100" and f.symbol == "BadDispatcher.indirect"
        ]
        assert len(indirect) == 1
        assert "BadDispatcher._attempt" in indirect[0].render()

    def test_broker_reentry_and_sleep(self):
        modules, graph = _load("bad_lock_scope.py")
        findings = lock_scope.check(modules, graph)
        assert any(
            f.rule == "RL101" and f.symbol == "BadDispatcher.reenter"
            for f in findings
        )
        assert any(
            f.rule == "RL102" and f.symbol == "BadDispatcher.deliver"
            for f in findings
        )


class TestLockOrderFixture:
    def test_opposite_order_cycle(self):
        modules, graph = _load("bad_lock_order.py")
        findings = lock_order.check(modules, graph)
        cycles = [f for f in findings if "cycle" in f.message]
        assert cycles, findings
        assert any(
            "BadRegistry._reg_lock" in f.message
            and "BadRegistry._stats_lock" in f.message
            for f in cycles
        )

    def test_self_deadlock_through_call(self):
        modules, graph = _load("bad_lock_order.py")
        findings = lock_order.check(modules, graph)
        assert any(
            "self-deadlock" in f.message
            and "BadReentry._state_lock" in f.message
            for f in findings
        )

    def test_all_are_rl200(self):
        modules, graph = _load("bad_lock_order.py")
        findings = lock_order.check(modules, graph)
        assert findings and _rules(findings) == {"RL200"}

    def test_rlock_self_reacquire_is_allowed(self, tmp_path):
        (tmp_path / "ok_rlock.py").write_text(
            "import threading\n"
            "class Reentrant:\n"
            "    def __init__(self):\n"
            "        self._state_lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._state_lock:\n"
            "            self._inner()\n"
            "    def _inner(self):\n"
            "        with self._state_lock:\n"
            "            pass\n",
            encoding="utf-8",
        )
        modules = load_modules(tmp_path, [tmp_path / "ok_rlock.py"])
        assert lock_order.check(modules, CallGraph(modules)) == []


class TestClockFixture:
    def test_trips_both_rules(self):
        modules, _ = _load("bad_clock.py")
        findings = clock_discipline.check(modules)
        assert _rules(findings) == {"RL300", "RL301"}

    def test_each_banned_call_is_found(self):
        modules, _ = _load("bad_clock.py")
        findings = clock_discipline.check(modules)
        messages = "\n".join(f.message for f in findings)
        for banned in ("time.time", "time.sleep", "time.perf_counter",
                       "datetime.now", "monotonic"):
            assert banned in messages, banned

    def test_clock_module_itself_is_exempt(self, tmp_path):
        clock_dir = tmp_path / "repro" / "obs"
        clock_dir.mkdir(parents=True)
        clock = clock_dir / "clock.py"
        clock.write_text("import time\nNOW = time.time()\n", encoding="utf-8")
        modules = load_modules(tmp_path, [clock])
        assert clock_discipline.check(modules) == []


class TestMetricsFixture:
    def test_trips_both_rules(self):
        modules, _ = _load("bad_metrics.py")
        findings = metrics_manifest.check(modules, EXACT, WILDCARDS)
        assert _rules(findings) == {"RL400", "RL401"}

    def test_unknown_name_and_kind_mismatch(self):
        modules, _ = _load("bad_metrics.py")
        findings = metrics_manifest.check(modules, EXACT, WILDCARDS)
        rl400 = [f for f in findings if f.rule == "RL400"]
        assert len(rl400) == 2
        messages = "\n".join(f.message for f in rl400)
        assert "broker.unheard_of" in messages
        assert "broker.published" in messages  # gauge vs declared counter

    def test_dynamic_names_flagged(self):
        modules, _ = _load("bad_metrics.py")
        findings = metrics_manifest.check(modules, EXACT, WILDCARDS)
        assert len([f for f in findings if f.rule == "RL401"]) == 2

    def test_declared_wildcard_family_is_accepted(self, tmp_path):
        (tmp_path / "ok_metrics.py").write_text(
            "def register(registry, stage):\n"
            '    registry.histogram(f"stage.{stage}.seconds")\n'
            '    registry.counter("broker.published")\n',
            encoding="utf-8",
        )
        modules = load_modules(tmp_path, [tmp_path / "ok_metrics.py"])
        assert metrics_manifest.check(modules, EXACT, WILDCARDS) == []


class TestApiSurfaceFixture:
    def test_unbound_export_is_rl501(self):
        modules, _ = _load("bad_api.py")
        findings = api_surface.check(modules, FIXTURES)
        rl501 = [f for f in findings if f.rule == "RL501"]
        assert len(rl501) == 1
        assert "missing" in rl501[0].message

    def _mini_tree(self, tmp_path, *, facade_all, config_fields):
        """A throwaway repo: snapshot file + facade + pinned config."""
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_public_api.py").write_text(
            'PUBLIC_API = ["Alpha"]\n'
            'CONFIG_FIELDS = {"Cfg": ["first", "second"]}\n',
            encoding="utf-8",
        )
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "api.py").write_text(
            "\n".join(f"{n} = object()" for n in facade_all)
            + f"\n__all__ = {facade_all!r}\n",
            encoding="utf-8",
        )
        (src / "config.py").write_text(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Cfg:\n"
            + "".join(f"    {f}: int = 0\n" for f in config_fields),
            encoding="utf-8",
        )
        return load_modules(tmp_path, [tmp_path / "src"])

    def test_facade_drift_is_rl500(self, tmp_path):
        modules = self._mini_tree(
            tmp_path,
            facade_all=["Alpha", "Beta"],  # Beta not in PUBLIC_API
            config_fields=["first", "second"],
        )
        findings = api_surface.check(modules, tmp_path)
        rl500 = [f for f in findings if f.rule == "RL500"]
        assert rl500 and any("Beta" in f.message for f in rl500)

    def test_config_field_drift_is_rl502(self, tmp_path):
        modules = self._mini_tree(
            tmp_path,
            facade_all=["Alpha"],
            config_fields=["first", "surprise"],  # second renamed
        )
        findings = api_surface.check(modules, tmp_path)
        rl502 = [f for f in findings if f.rule == "RL502"]
        assert len(rl502) == 1
        assert "Cfg" in rl502[0].message

    def test_matching_tree_is_clean(self, tmp_path):
        modules = self._mini_tree(
            tmp_path,
            facade_all=["Alpha"],
            config_fields=["first", "second"],
        )
        assert api_surface.check(modules, tmp_path) == []


class TestDeterminismFixture:
    def _findings(self, name="bad_determinism.py"):
        modules, _ = _load(name)
        from repro.analysis.checkers import determinism

        return determinism.check(modules)

    def test_rl600_fires_on_every_unseeded_source(self):
        findings = [f for f in self._findings() if f.rule == "RL600"]
        assert {f.symbol for f in findings} == {"unseeded_sources"}
        assert len(findings) == 4  # random.random, Random(), default_rng(), rand

    def test_rl601_loop_sink_and_materializers(self):
        findings = [f for f in self._findings() if f.rule == "RL601"]
        assert {f.symbol for f in findings} == {
            "set_order_escapes",
            "set_materialized",
            "comprehension_over_set",
        }

    def test_rl601_chain_reports_the_sink(self):
        loop = next(
            f for f in self._findings() if f.symbol == "set_order_escapes"
        )
        assert "append()" in loop.message
        assert loop.line > 0

    def test_good_idioms_stay_silent(self):
        silent = {
            "seeded_sources_are_fine",
            "sorted_iteration_is_fine",
            "order_insensitive_consumers_are_fine",
            "dict_iteration_is_fine",
        }
        assert not {f.symbol for f in self._findings()} & silent

    def test_rl602_scoped_to_scoring_packages(self):
        findings = self._findings("src/repro/core/bad_float_accum.py")
        rl602 = [f for f in findings if f.rule == "RL602"]
        assert {f.symbol for f in rl602} == {
            "accumulate_over_set",
            "sum_over_set",
        }
        assert not any(
            f.symbol == "sorted_accumulation_is_fine" for f in findings
        )


class TestCrashConsistencyFixture:
    def _findings(self):
        modules, _ = _load("src/repro/broker/bad_crash_consistency.py")
        from repro.analysis.checkers import crash_consistency

        return crash_consistency.check(modules)

    def test_rl700_uncovered_mutations(self):
        rl700 = [f for f in self._findings() if f.rule == "RL700"]
        assert {f.symbol for f in rl700} == {
            "BadBroker.unsubscribe",
            "BadBroker.publish",
        }
        assert all(f.chain for f in rl700)

    def test_rl700_dominating_and_postdominating_logs_cover(self):
        symbols = {f.symbol for f in self._findings() if f.rule == "RL700"}
        assert "BadBroker.good_subscribe" not in symbols
        assert "BadBroker.good_publish" not in symbols

    def test_rl701_swallowing_handlers(self):
        rl701 = [f for f in self._findings() if f.rule == "RL701"]
        assert {f.symbol for f in rl701} == {
            "swallowing_dispatcher",
            "bare_swallow",
        }
        assert all(f.chain for f in rl701)

    def test_rl701_rethrow_is_fine(self):
        assert not any(
            f.symbol == "rethrowing_handler_is_fine" for f in self._findings()
        )

    def test_rl702_fsync_and_flush_escapes(self):
        rl702 = [f for f in self._findings() if f.rule == "RL702"]
        assert {f.symbol for f in rl702} == {"stray_fsync"}
        assert len(rl702) == 2  # one flush, one fsync
        assert any("open@" in " ".join(f.chain) for f in rl702)


class TestResourceLifecycleFixture:
    def _findings(self):
        modules, _ = _load("bad_resource_lifecycle.py")
        from repro.analysis.checkers import resource_lifecycle

        return resource_lifecycle.check(modules)

    def test_rl800_unjoined_thread(self):
        rl800 = [f for f in self._findings() if f.rule == "RL800"]
        assert {f.symbol for f in rl800} == {"ForgottenWorker.__init__"}
        assert "JoinedWorker" not in {f.symbol.split(".")[0] for f in rl800}

    def test_rl801_local_leaks_on_exception_paths(self):
        rl801 = [f for f in self._findings() if f.rule == "RL801"]
        assert {f.symbol for f in rl801} == {
            "leaky_temp_snapshot",
            "leaky_handle",
            "OrphanOnInitFailure.__init__",
        }
        assert all(f.chain for f in rl801)

    def test_rl801_protected_idioms_stay_silent(self):
        symbols = {f.symbol for f in self._findings()}
        assert "protected_temp_snapshot" not in symbols
        assert "with_handle_is_fine" not in symbols
        assert "ProtectedInit.__init__" not in symbols

    def test_rl802_acquire_without_finally(self):
        rl802 = [f for f in self._findings() if f.rule == "RL802"]
        assert {f.symbol for f in rl802} == {"ManualLock.risky"}
        assert all(f.chain for f in rl802)
