"""Unit coverage for the CFG/def-use core under the RL6xx–RL8xx rules.

The checkers exercise :mod:`repro.analysis.dataflow` end to end; these
tests pin the primitives in isolation — block structure, dominance,
exception edges, finally routing, guard collapse, reaching definitions
— so a checker regression can be bisected to the layer that broke.
"""

import ast
import textwrap

from repro.analysis.dataflow import (
    ReachingDefs,
    build_cfg,
    own_calls,
    stmt_own_exprs,
)


def _fn(source):
    tree = ast.parse(textwrap.dedent(source))
    node = tree.body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def _block_containing(cfg, needle):
    """Block whose own statements include one unparsing to ``needle``."""
    hits = []
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            exprs = stmt_own_exprs(stmt)
            rendered = [ast.unparse(e) for e in exprs]
            if isinstance(stmt, (ast.Return, ast.Assign, ast.Expr, ast.AugAssign)):
                rendered.append(ast.unparse(stmt))
            if any(needle == r for r in rendered):
                hits.append(block.id)
    assert hits, f"no block contains {needle!r}"
    assert len(set(hits)) == 1, f"{needle!r} ambiguous across blocks {hits}"
    return hits[0]


class TestStructure:
    def test_straight_line_single_block(self):
        cfg = build_cfg(_fn("""
            def f(x):
                y = x + 1
                return y
        """))
        reachable = cfg.reachable_from_entry()
        bodies = [
            b for b in reachable if cfg.blocks[b].stmts
        ]
        assert len(bodies) == 1

    def test_if_produces_join(self):
        cfg = build_cfg(_fn("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """))
        then_b = _block_containing(cfg, "a = 1")
        else_b = _block_containing(cfg, "a = 2")
        ret_b = _block_containing(cfg, "return a")
        assert ret_b in cfg.blocks[then_b].succs
        assert ret_b in cfg.blocks[else_b].succs

    def test_call_gets_exception_edge_to_exit(self):
        cfg = build_cfg(_fn("""
            def f(x):
                risky(x)
                return 1
        """))
        risky_b = _block_containing(cfg, "risky(x)")
        assert cfg.exit in cfg.blocks[risky_b].raises_to

    def test_exception_edges_can_be_disabled(self):
        cfg = build_cfg(_fn("""
            def f(x):
                risky(x)
                return 1
        """), exception_edges=False)
        risky_b = _block_containing(cfg, "risky(x)")
        assert not cfg.blocks[risky_b].raises_to


class TestDominance:
    SRC = """
        def f(x):
            start(x)
            if x:
                left()
            else:
                right()
            done()
    """

    def test_entry_side_dominates_join(self):
        cfg = build_cfg(_fn(self.SRC), exception_edges=False)
        dom = cfg.dominators()
        start_b = _block_containing(cfg, "start(x)")
        done_b = _block_containing(cfg, "done()")
        left_b = _block_containing(cfg, "left()")
        assert start_b in dom[done_b]
        assert left_b not in dom[done_b]

    def test_join_postdominates_branches(self):
        cfg = build_cfg(_fn(self.SRC), exception_edges=False)
        pdom = cfg.postdominators()
        done_b = _block_containing(cfg, "done()")
        left_b = _block_containing(cfg, "left()")
        right_b = _block_containing(cfg, "right()")
        assert done_b in pdom[left_b]
        assert done_b in pdom[right_b]

    def test_exception_edges_dissolve_postdominance(self):
        cfg = build_cfg(_fn(self.SRC), exception_edges=True)
        pdom = cfg.postdominators()
        done_b = _block_containing(cfg, "done()")
        left_b = _block_containing(cfg, "left()")
        assert done_b not in pdom[left_b]


class TestTryFinally:
    def test_no_path_to_exit_dodges_the_finally(self):
        cfg = build_cfg(_fn("""
            def f(h):
                try:
                    work(h)
                finally:
                    h.close()
        """))
        # The finally body is replayed per abrupt-exit route, so it
        # appears in multiple blocks; the invariant is path-shaped, not
        # single-block post-dominance.
        close_blocks = {
            b.id
            for b in cfg.blocks.values()
            if any("h.close()" in ast.unparse(s) for s in b.stmts)
        }
        work_b = _block_containing(cfg, "work(h)")
        assert len(close_blocks) >= 2  # normal + exceptional replays
        assert not cfg.path_avoiding(work_b, cfg.exit, close_blocks)

    def test_return_routes_through_finally(self):
        cfg = build_cfg(_fn("""
            def f(h):
                try:
                    return work(h)
                finally:
                    h.close()
        """))
        ret_b = next(
            b.id
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.Return) for s in b.stmts)
        )
        block = cfg.blocks[ret_b]
        # The replayed finally joins the return in its own block (the
        # straight-line route), and the raise edge from the returned
        # call lands in a block that also closes.
        assert any("h.close()" in ast.unparse(s) for s in block.stmts)
        for target in block.raises_to:
            assert any(
                "h.close()" in ast.unparse(s)
                for s in cfg.blocks[target].stmts
            )

    def test_handler_receives_raise_edge(self):
        cfg = build_cfg(_fn("""
            def f(h):
                try:
                    work(h)
                except ValueError:
                    recover(h)
        """))
        work_b = _block_containing(cfg, "work(h)")
        recover_b = _block_containing(cfg, "recover(h)")
        assert cfg.path_avoiding(work_b, recover_b, set())
        assert cfg.exit not in cfg.blocks[work_b].raises_to


class TestGuardCollapse:
    SRC = """
        def f(self, event):
            self._sequence += 1
            if self.durability is not None:
                self.durability.log_publish(event)
            self._replay.append(event)
    """

    def test_collapsed_guard_makes_log_postdominate(self):
        cfg = build_cfg(
            _fn(self.SRC),
            collapse_guards=("durability",),
            exception_edges=False,
        )
        seq_b = _block_containing(cfg, "self._sequence += 1")
        log_b = _block_containing(cfg, "self.durability.log_publish(event)")
        assert log_b in cfg.postdominators()[seq_b]

    def test_uncollapsed_guard_keeps_both_edges(self):
        cfg = build_cfg(_fn(self.SRC), exception_edges=False)
        seq_b = _block_containing(cfg, "self._sequence += 1")
        log_b = _block_containing(cfg, "self.durability.log_publish(event)")
        assert log_b not in cfg.postdominators()[seq_b]


class TestSuccsAfter:
    def test_creation_statements_own_raise_is_discounted(self):
        cfg = build_cfg(_fn("""
            def f(path):
                h = open(path)
                return h
        """))
        creation = None
        for block in cfg.blocks.values():
            for stmt in block.stmts:
                if isinstance(stmt, ast.Assign):
                    creation = (block.id, stmt)
        assert creation is not None
        block_id, stmt = creation
        # `return h` cannot raise, so the only live successors after the
        # open() ran are the normal ones.
        assert cfg.succs_after(block_id, stmt) == (
            cfg.blocks[block_id].succs - cfg.blocks[block_id].raises_to
        )

    def test_later_raising_statement_keeps_the_edges(self):
        cfg = build_cfg(_fn("""
            def f(path):
                h = open(path)
                risky(h)
        """))
        for block in cfg.blocks.values():
            for stmt in block.stmts:
                if isinstance(stmt, ast.Assign):
                    assert cfg.succs_after(block.id, stmt) == set(
                        cfg.blocks[block.id].succs
                    )


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        fn = _fn("""
            def f():
                terms = set()
                for t in terms:
                    use(t)
        """)
        cfg = build_cfg(fn)
        rd = ReachingDefs(cfg)
        loop = next(n for n in ast.walk(fn) if isinstance(n, ast.For))
        block = cfg.block_of_stmt[id(loop)]
        defs = rd.reaching(block, loop, "terms")
        assert len(defs) == 1
        assert isinstance(defs[0].value, ast.Call)

    def test_branches_merge_both_defs(self):
        fn = _fn("""
            def f(x):
                if x:
                    v = set()
                else:
                    v = []
                use(v)
        """)
        cfg = build_cfg(fn)
        rd = ReachingDefs(cfg)
        use = fn.body[-1]
        block = cfg.block_of_stmt[id(use)]
        values = {
            type(d.value).__name__ for d in rd.reaching(block, use, "v")
        }
        assert values == {"Call", "List"}

    def test_redefinition_kills_in_block(self):
        fn = _fn("""
            def f():
                v = set()
                v = []
                use(v)
        """)
        cfg = build_cfg(fn)
        rd = ReachingDefs(cfg)
        use = fn.body[-1]
        block = cfg.block_of_stmt[id(use)]
        defs = rd.reaching(block, use, "v")
        assert len(defs) == 1
        assert isinstance(defs[0].value, ast.List)


class TestOwnExprs:
    def test_compound_heads_do_not_leak_their_bodies(self):
        stmt = ast.parse("if cond():\n    body()\n").body[0]
        calls = [ast.unparse(c) for c in own_calls(stmt)]
        assert calls == ["cond()"]

    def test_lambda_bodies_are_not_own_calls(self):
        stmt = ast.parse("h = lambda: log_drain()\n").body[0]
        assert own_calls(stmt) == []
