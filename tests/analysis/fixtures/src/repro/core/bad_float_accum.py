# ruff: noqa
"""Known-bad float accumulation: must trip RL602 (scoped to core/).

Lint *input* for tests/analysis — loaded by path with the fixtures
directory as root, so this file's repo-relative path starts with
``src/repro/core/`` and lands inside RL602's scoring scope.
"""


def accumulate_over_set(weights):
    pool = set(weights)
    total = 0.0
    for w in pool:
        total += w  # RL602: summation order is unspecified
    return total


def sum_over_set(weights):
    pool = set(weights)
    return sum(w * w for w in pool)  # RL602: generator driven by a set


def sorted_accumulation_is_fine(weights):
    pool = set(weights)
    total = 0.0
    for w in sorted(pool):
        total += w
    return total
