# ruff: noqa
"""Known-bad crash consistency: must trip RL700/RL701/RL702.

Lint *input* for tests/analysis — loaded by path with the fixtures
directory as root, so this file's repo-relative path starts with
``src/repro/broker/`` and lands inside RL700's journaled-state scope.
"""
import os


class BadBroker:
    def __init__(self, durability):
        self.durability = durability
        self._subscribers = {}
        self._sequence = 0

    def unsubscribe(self, sub_id):
        # RL700: the pop is reachable without the journal record — the
        # log call is fenced behind an unrelated membership test.
        if self.durability is not None and sub_id in self._subscribers:
            self.durability.log_unsubscribe(sub_id)
        return self._subscribers.pop(sub_id, None) is not None

    def publish(self, event):
        self._sequence += 1  # RL700: no log_publish anywhere in sight
        return self._sequence

    def good_subscribe(self, sub_id, handle):
        if self.durability is not None:
            self.durability.log_subscribe(handle)
        self._subscribers[sub_id] = handle  # covered: log_* dominates

    def good_publish(self, event):
        sequence = self._sequence
        self._sequence += 1  # covered: log_publish post-dominates
        if self.durability is not None:
            self.durability.log_publish(sequence, event)
        return sequence


def swallowing_dispatcher(queue):
    while True:
        item = queue.get()
        try:
            item.dispatch()
        except BaseException:  # RL701: absorbs SimulatedCrash silently
            continue


def bare_swallow(work):
    try:
        work()
    except:  # RL701: bare except without re-raise
        pass


def rethrowing_handler_is_fine(teardown, work):
    try:
        work()
    except BaseException:
        teardown()
        raise


def stray_fsync(path, payload):
    handle = open(path, "ab")
    try:
        handle.write(payload)
        handle.flush()  # RL702: flush on an open() handle outside durability
        os.fsync(handle.fileno())  # RL702: sync policy escape
    finally:
        handle.close()
