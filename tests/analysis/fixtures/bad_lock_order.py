# ruff: noqa
"""Known-bad lock orders: both patterns here must trip RL200.

Lint input for tests/analysis — loaded by path, never imported.
"""
import threading


class BadRegistry:
    def __init__(self):
        self._reg_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def register(self):
        with self._reg_lock:
            with self._stats_lock:  # order: reg -> stats
                pass

    def snapshot(self):
        with self._stats_lock:
            with self._reg_lock:  # order: stats -> reg (cycle)
                pass


class BadReentry:
    def __init__(self):
        self._state_lock = threading.Lock()

    def outer(self):
        with self._state_lock:
            self._inner()  # self-deadlock: non-reentrant re-acquire

    def _inner(self):
        with self._state_lock:
            pass
