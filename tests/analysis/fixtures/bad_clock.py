# ruff: noqa
"""Known-bad clock usage: every line marked below must trip RL300/RL301.

Lint input for tests/analysis — loaded by path, never imported.
"""
import time
from datetime import datetime
from time import monotonic  # RL300: from-import of a banned name


def stamp():
    return time.time()  # RL300


def nap():
    time.sleep(0.5)  # RL300


def elapsed(start):
    return time.perf_counter() - start  # RL300


def wall():
    return datetime.now()  # RL301
