# ruff: noqa
"""Known-bad lock scopes: every pattern here must trip RL100/RL101/RL102.

This file is lint *input* for tests/analysis — it is loaded by path and
never imported, and it deliberately reproduces the PR-4 incident shape
(subscriber callback and backoff sleep executed under a broker lock).
"""
import threading


class BadDispatcher:
    def __init__(self, broker, clock):
        self._dispatch_lock = threading.Lock()
        self._broker = broker
        self._clock = clock

    def deliver(self, handle, delivery):
        with self._dispatch_lock:
            handle.callback(delivery)  # RL100: user code under the lock
            self._clock.sleep(0.01)  # RL102: backoff under the lock

    def reenter(self, event):
        with self._dispatch_lock:
            self._broker.publish(event)  # RL101: broker re-entry under lock

    def indirect(self, handle, delivery):
        with self._dispatch_lock:
            self._attempt(handle, delivery)  # RL100 via the call graph

    def _attempt(self, handle, delivery):
        handle.callback(delivery)
