# ruff: noqa
"""Known-bad export list: ``__all__`` names an unbound symbol (RL501).

Lint input for tests/analysis — loaded by path, never imported.
"""

__all__ = ["exists", "missing"]


def exists():
    return 1
