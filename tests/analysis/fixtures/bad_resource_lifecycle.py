# ruff: noqa
"""Known-bad resource lifecycles: must trip RL800/RL801/RL802.

Lint *input* for tests/analysis — loaded by path, never imported. Each
bad shape is paired with the corrected idiom.
"""
import os
import tempfile
import threading


class ForgottenWorker:
    def __init__(self):
        # RL800: neither daemon=True nor joined by any method here.
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass


class JoinedWorker:
    def __init__(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass

    def close(self):
        self._worker.join()


def leaky_temp_snapshot(write_snapshot):
    fd, path = tempfile.mkstemp()
    os.close(fd)
    write_snapshot(path)  # RL801: a raise here leaks the temp file
    os.unlink(path)


def protected_temp_snapshot(write_snapshot):
    fd, path = tempfile.mkstemp()
    try:
        os.close(fd)
        write_snapshot(path)
    finally:
        os.unlink(path)


def leaky_handle(path, render):
    handle = open(path, "w")
    handle.write(render())  # RL801: render() raising skips close
    handle.close()


def with_handle_is_fine(path, render):
    with open(path, "w") as handle:
        handle.write(render())


class OrphanOnInitFailure:
    def __init__(self, path, load):
        # RL801: load() raising unwinds __init__ with the handle open
        # and no caller holding a reference to close it.
        self._handle = open(path, "rb")
        self._data = load(self._handle)

    def close(self):
        self._handle.close()


class ProtectedInit:
    def __init__(self, path, load):
        self._handle = open(path, "rb")
        try:
            self._data = load(self._handle)
        except BaseException:
            self._handle.close()
            raise

    def close(self):
        self._handle.close()


class ManualLock:
    def __init__(self):
        self._lock = threading.Lock()

    def risky(self, work):
        self._lock.acquire()  # RL802: work() raising leaves it held
        work()
        self._lock.release()

    def disciplined(self, work):
        self._lock.acquire()
        try:
            work()
        finally:
            self._lock.release()

    def with_statement_is_fine(self, work):
        with self._lock:
            work()
