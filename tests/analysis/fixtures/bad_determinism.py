# ruff: noqa
"""Known-bad determinism: every pattern here must trip RL600/RL601.

Lint *input* for tests/analysis — loaded by path, never imported. Each
bad shape is paired with the corrected idiom so the tests can pin both
directions: the rule fires on the bug and stays quiet on the fix.
"""
import random
import numpy as np


def unseeded_sources():
    a = random.random()  # RL600: global unseeded generator
    rng = random.Random()  # RL600: constructor without a seed
    g = np.random.default_rng()  # RL600: unseeded numpy generator
    b = np.random.rand(3)  # RL600: numpy global generator
    return a, rng, g, b


def seeded_sources_are_fine(seed):
    rng = random.Random(seed)
    g = np.random.default_rng(42)
    return rng.random(), g.random()


def set_order_escapes(frames):
    terms = {"pressure", "mbar", "bar"}
    out = []
    for term in terms:  # RL601: iteration order flows into append()
        out.append(term)
    frames.write(",".join(out))
    return out


def set_materialized(tags):
    joined = set(tags) | {"theme"}
    return list(joined)  # RL601: list() pins an unspecified order


def comprehension_over_set(tags):
    pool = frozenset(tags)
    return [t.upper() for t in pool]  # RL601: listcomp materializes order


def sorted_iteration_is_fine(frames):
    terms = {"pressure", "mbar", "bar"}
    out = []
    for term in sorted(terms):
        out.append(term)
    frames.write(",".join(out))
    return out


def order_insensitive_consumers_are_fine(tags):
    pool = set(tags)
    total = len(pool)
    widest = max(pool, default="")
    return total, widest, sorted(pool)


def dict_iteration_is_fine(scores):
    out = []
    for key in scores:  # dicts iterate in insertion order: deterministic
        out.append(key)
    return out
