# ruff: noqa
"""Known-bad metric registrations: must trip RL400/RL401.

Lint input for tests/analysis — loaded by path, never imported.
"""


def register(registry, names):
    registry.counter("broker.unheard_of")  # RL400: not in the manifest
    registry.gauge("broker.published")  # RL400: declared as a counter
    registry.histogram(f"adhoc.{names[0]}")  # RL401: unknown wildcard family
    for name in names:
        registry.counter(name)  # RL401: dynamic name
