"""Runtime complement of RL401 for the FIELDS-loop registrations.

``BrokerMetrics`` and ``EngineStats`` register their counters in a loop
over a class-level ``FIELDS`` tuple, so the static checker sees an
f-string with no literal head and those two sites carry ``.repro-lint.toml``
entries. The deal recorded in that file is that *this* test covers the
expansion instead: every ``"<prefix>.<field>"`` the loops produce must
be a declared counter in the manifest.
"""

from repro.broker.broker import BrokerMetrics
from repro.core.engine import EngineStats
from repro.obs.manifest import METRICS, metric_names, spec_for


class TestFieldsLoopsAreDeclared:
    def test_broker_metrics_fields(self):
        for field in BrokerMetrics.FIELDS:
            spec = spec_for(f"broker.{field}")
            assert spec is not None, f"broker.{field} missing from manifest"
            assert spec.kind == "counter", f"broker.{field} is {spec.kind}"

    def test_engine_stats_fields(self):
        for field in EngineStats.FIELDS:
            spec = spec_for(f"engine.{field}")
            assert spec is not None, f"engine.{field} missing from manifest"
            assert spec.kind == "counter", f"engine.{field} is {spec.kind}"


class TestManifestWellFormed:
    def test_names_are_unique(self):
        names = metric_names()
        assert len(names) == len(set(names))

    def test_kinds_are_valid(self):
        assert {s.kind for s in METRICS} <= {"counter", "gauge", "histogram"}

    def test_every_entry_is_documented(self):
        assert all(s.description.strip() for s in METRICS)

    def test_wildcards_resolve_through_spec_for(self):
        spec = spec_for("stage.theme_filter.seconds")
        assert spec is not None and spec.kind == "histogram"

    def test_unknown_name_resolves_to_none(self):
        assert spec_for("no.such.metric") is None
