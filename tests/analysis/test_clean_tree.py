"""The real source tree must lint clean.

This is the other half of the fixture tests: the checkers fire on
known-bad code *and* stay quiet (modulo the reviewed allowlist) on the
tree as shipped. A failure here means new code introduced a violation —
fix it or add a reviewed ``.repro-lint.toml`` entry in the same change.
"""

from pathlib import Path

import pytest

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def result():
    return run_lint(REPO_ROOT)


def test_src_tree_has_zero_findings(result):
    assert result.ok, "\n" + result.render_text()


def test_no_stale_suppressions(result):
    assert result.stale == []


def test_allowlist_entries_are_all_active(result):
    """Every reviewed suppression still matches a live finding."""
    assert result.suppressed, (
        "the allowlist suppressed nothing — its entries are stale and "
        "the stale check should have caught that"
    )


def test_whole_src_tree_was_scanned(result):
    src_files = len(list((REPO_ROOT / "src").rglob("*.py")))
    assert result.checked_files == src_files
