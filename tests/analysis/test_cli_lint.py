"""``repro lint`` CLI: exit codes, formats, and the CI stale-only mode."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _empty_allowlist(tmp_path):
    path = tmp_path / "empty.toml"
    path.write_text("", encoding="utf-8")
    return path


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL000", "RL100", "RL200", "RL300", "RL400", "RL500"):
        assert rule_id in out


def test_repo_tree_exits_zero(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_fixture_violations_exit_nonzero_with_json(tmp_path, capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(_empty_allowlist(tmp_path)),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert any(f["rule"] == "RL300" for f in payload["findings"])


def test_text_format_renders_file_line_rule(tmp_path, capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(_empty_allowlist(tmp_path)),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "tests/analysis/fixtures/bad_clock.py" in out
    assert "RL300" in out


def test_stale_only_is_clean_on_repo(capsys):
    assert main(["lint", "--root", str(REPO_ROOT), "--stale-only"]) == 0
    assert "0 stale suppression(s)" in capsys.readouterr().out


def test_stale_only_fails_on_dead_entry(tmp_path, capsys):
    allow = tmp_path / "allow.toml"
    allow.write_text(
        '[[allow]]\nrules = ["RL999"]\npath = "nowhere.py"\n'
        'reason = "never matches"\n',
        encoding="utf-8",
    )
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_api.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(allow),
            "--stale-only",
        ]
    )
    assert code == 1
    assert "RL000" in capsys.readouterr().out


def test_malformed_allowlist_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        '[[allow]]\nrules = ["RL100"]\npath = "x.py"\n', encoding="utf-8"
    )
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(bad),
        ]
    )
    assert code == 2
    assert "reason" in capsys.readouterr().err
