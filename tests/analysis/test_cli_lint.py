"""``repro lint`` CLI: exit codes, formats, and the CI stale-only mode."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _empty_allowlist(tmp_path):
    path = tmp_path / "empty.toml"
    path.write_text("", encoding="utf-8")
    return path


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL000", "RL100", "RL200", "RL300", "RL400", "RL500"):
        assert rule_id in out


def test_repo_tree_exits_zero(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_fixture_violations_exit_nonzero_with_json(tmp_path, capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(_empty_allowlist(tmp_path)),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert any(f["rule"] == "RL300" for f in payload["findings"])


def test_text_format_renders_file_line_rule(tmp_path, capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(_empty_allowlist(tmp_path)),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "tests/analysis/fixtures/bad_clock.py" in out
    assert "RL300" in out


def test_stale_only_is_clean_on_repo(capsys):
    assert main(["lint", "--root", str(REPO_ROOT), "--stale-only"]) == 0
    assert "0 stale suppression(s)" in capsys.readouterr().out


def test_stale_only_fails_on_dead_entry(tmp_path, capsys):
    allow = tmp_path / "allow.toml"
    allow.write_text(
        '[[allow]]\nrules = ["RL999"]\npath = "nowhere.py"\n'
        'reason = "never matches"\n',
        encoding="utf-8",
    )
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_api.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(allow),
            "--stale-only",
        ]
    )
    assert code == 1
    assert "RL000" in capsys.readouterr().out


def test_malformed_allowlist_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        '[[allow]]\nrules = ["RL100"]\npath = "x.py"\n', encoding="utf-8"
    )
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(bad),
        ]
    )
    assert code == 2
    assert "reason" in capsys.readouterr().err


# -- machine output contract (new in the flow-aware tier) -----------------

#: The JSON shape downstream tooling may depend on: exactly these keys,
#: exactly these types. Adding a key is fine once this snapshot moves
#: with it; renaming or retyping one is a breaking change.
TOP_LEVEL_SCHEMA = {
    "ok": bool,
    "checked_files": int,
    "suppressed": int,
    "findings": list,
}
FINDING_SCHEMA = {
    "path": str,
    "line": int,
    "rule": str,
    "symbol": str,
    "message": str,
    "chain": list,
}


def _lint_json(tmp_path, capsys, *paths):
    code = main(
        [
            "lint",
            *[str(p) for p in paths],
            "--root",
            str(REPO_ROOT),
            "--allowlist",
            str(_empty_allowlist(tmp_path)),
            "--format",
            "json",
        ]
    )
    return code, json.loads(capsys.readouterr().out)


def test_json_schema_snapshot(tmp_path, capsys):
    code, payload = _lint_json(
        tmp_path, capsys, FIXTURES / "bad_resource_lifecycle.py"
    )
    assert code == 1
    assert set(payload) == set(TOP_LEVEL_SCHEMA)
    for key, kind in TOP_LEVEL_SCHEMA.items():
        assert isinstance(payload[key], kind), key
    assert payload["findings"], "fixture must produce findings"
    for finding in payload["findings"]:
        assert set(finding) == set(FINDING_SCHEMA)
        for key, kind in FINDING_SCHEMA.items():
            assert isinstance(finding[key], kind), key
        assert all(isinstance(link, str) for link in finding["chain"])
        assert finding["line"] >= 1


def test_new_families_exit_nonzero_with_rule_and_chain(tmp_path, capsys):
    expectations = [
        (FIXTURES / "bad_determinism.py", {"RL600", "RL601"}),
        (
            FIXTURES / "src" / "repro" / "core" / "bad_float_accum.py",
            {"RL602"},
        ),
        (
            FIXTURES
            / "src"
            / "repro"
            / "broker"
            / "bad_crash_consistency.py",
            {"RL700", "RL701", "RL702"},
        ),
        (
            FIXTURES / "bad_resource_lifecycle.py",
            {"RL800", "RL801", "RL802"},
        ),
    ]
    for path, expected_rules in expectations:
        code, payload = _lint_json(tmp_path, capsys, path)
        assert code == 1, path.name
        got = {f["rule"] for f in payload["findings"]}
        assert expected_rules <= got, (path.name, got)
        # Acceptance: every flow-aware finding reports a chain location.
        for finding in payload["findings"]:
            if finding["rule"] in expected_rules - {"RL600"}:
                assert finding["chain"] or "RL60" in finding["rule"], finding


def test_changed_mode_rejects_explicit_paths(capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "bad_clock.py"),
            "--root",
            str(REPO_ROOT),
            "--changed",
        ]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_changed_mode_clean_on_clean_checkout(tmp_path, capsys):
    """In a scratch repo with no changes, --changed exits 0 trivially."""
    import subprocess

    scratch = tmp_path / "repo"
    (scratch / "src").mkdir(parents=True)
    (scratch / "src" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    subprocess.run(["git", "init", "-q"], cwd=scratch, check=True)
    subprocess.run(["git", "add", "-A"], cwd=scratch, check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-qm", "seed"],
        cwd=scratch,
        check=True,
    )
    code = main(["lint", "--root", str(scratch), "--changed"])
    assert code == 0
    assert "no changed Python files" in capsys.readouterr().out


def test_changed_mode_scans_modified_file(tmp_path, capsys):
    import subprocess

    scratch = tmp_path / "repo"
    (scratch / "src").mkdir(parents=True)
    target = scratch / "src" / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    subprocess.run(["git", "init", "-q"], cwd=scratch, check=True)
    subprocess.run(["git", "add", "-A"], cwd=scratch, check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-qm", "seed"],
        cwd=scratch,
        check=True,
    )
    target.write_text(
        "import random\n\n\ndef f():\n    return random.random()\n",
        encoding="utf-8",
    )
    code = main(["lint", "--root", str(scratch), "--changed"])
    assert code == 1
    assert "RL600" in capsys.readouterr().out


# -- allowlist growth audit (CI base-vs-head comparison) --------------------

GROWTH_ENTRY = """\
[[allow]]
rules = ["RL100"]
path = "src/repro/broker/threaded.py"
symbol = "ThreadedBroker._run"
reason = "serialized inner broker; reviewed in PR 4"
"""


def test_growth_base_clean_when_identical(tmp_path, capsys):
    base = tmp_path / "base.toml"
    head = tmp_path / "head.toml"
    base.write_text(GROWTH_ENTRY, encoding="utf-8")
    head.write_text(GROWTH_ENTRY, encoding="utf-8")
    code = main(
        [
            "lint",
            "--root", str(REPO_ROOT),
            "--allowlist", str(head),
            "--growth-base", str(base),
        ]
    )
    assert code == 0
    assert "0 added" in capsys.readouterr().out


def test_growth_base_reports_added_entry_with_reason(tmp_path, capsys):
    base = tmp_path / "base.toml"
    head = tmp_path / "head.toml"
    base.write_text(GROWTH_ENTRY, encoding="utf-8")
    head.write_text(
        GROWTH_ENTRY
        + '\n[[allow]]\nrules = ["RL601"]\npath = "src/x.py"\n'
        + 'symbol = "g"\nreason = "bounded two-element set; reviewed"\n',
        encoding="utf-8",
    )
    code = main(
        [
            "lint",
            "--root", str(REPO_ROOT),
            "--allowlist", str(head),
            "--growth-base", str(base),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0  # growth with its own reason is legal, just surfaced
    assert "allowlist +src/x.py [g] RL601" in out
    assert "bounded two-element set; reviewed" in out


def test_growth_base_fails_on_copy_pasted_reason(tmp_path, capsys):
    base = tmp_path / "base.toml"
    head = tmp_path / "head.toml"
    base.write_text(GROWTH_ENTRY, encoding="utf-8")
    head.write_text(
        GROWTH_ENTRY
        + '\n[[allow]]\nrules = ["RL601"]\npath = "src/x.py"\n'
        + 'symbol = "g"\nreason = "serialized inner broker; reviewed in PR 4"\n',
        encoding="utf-8",
    )
    code = main(
        [
            "lint",
            "--root", str(REPO_ROOT),
            "--allowlist", str(head),
            "--growth-base", str(base),
        ]
    )
    assert code == 1
    assert "verbatim copy" in capsys.readouterr().err


def test_growth_base_missing_base_file_counts_all_as_growth(tmp_path, capsys):
    head = tmp_path / "head.toml"
    head.write_text(GROWTH_ENTRY, encoding="utf-8")
    code = main(
        [
            "lint",
            "--root", str(REPO_ROOT),
            "--allowlist", str(head),
            "--growth-base", str(tmp_path / "does-not-exist.toml"),
        ]
    )
    assert code == 0
    assert "1 added" in capsys.readouterr().out


def test_growth_base_malformed_head_exits_two(tmp_path, capsys):
    base = tmp_path / "base.toml"
    head = tmp_path / "head.toml"
    base.write_text("", encoding="utf-8")
    head.write_text("[[allow]]\nrules = [\"RL100\"]\n", encoding="utf-8")
    code = main(
        [
            "lint",
            "--root", str(REPO_ROOT),
            "--allowlist", str(head),
            "--growth-base", str(base),
        ]
    )
    assert code == 2
    assert "needs 'path'" in capsys.readouterr().err
