"""Runtime lock-discipline sanitizer: the dynamic half of RL200.

The headline regression here is the PR-4 incident: a broker lock held
across a subscriber callback that re-enters the broker. Under
``InstrumentedLock`` that surfaces as an immediate
:class:`LockOrderViolation` with a stack trace — instead of a hung CI
job — and the ``lock_discipline`` fixture asserts the acquisition
orders actually observed during a test form no cycle.
"""

import threading

import pytest

from repro.analysis.runtime import (
    InstrumentedLock,
    LockOrderRecorder,
    LockOrderViolation,
)
from repro.broker.threaded import ThreadedBroker
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

EVENT = parse_event(
    "({energy, appliances, building},"
    " {type: increased energy consumption event, device: computer,"
    "  office: room 112})"
)
SUBSCRIPTION = parse_subscription(
    "({power, computers},"
    " {type= increased energy usage event~, device~= laptop~, office= room 112})"
)


class TestInstrumentedLock:
    def test_behaves_like_a_lock(self):
        lock = InstrumentedLock(LockOrderRecorder(), "a")
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        lock.release()

    def test_pr4_shape_reacquire_under_callback_raises(self):
        """Lock held across a callback that re-enters the same lock."""
        recorder = LockOrderRecorder()
        dispatch_lock = InstrumentedLock(recorder, "broker._lock")

        def subscriber_callback():
            with dispatch_lock:  # re-entry: deadlock without instrumentation
                pass

        with pytest.raises(LockOrderViolation, match="re-acquired"):
            with dispatch_lock:
                subscriber_callback()

    def test_reentrant_reacquire_is_fine(self):
        recorder = LockOrderRecorder()
        lock = InstrumentedLock(recorder, "reg", reentrant=True)
        with lock, lock:
            pass
        assert recorder.edges() == {}

    def test_failed_nonblocking_acquire_unwinds_the_stack(self):
        recorder = LockOrderRecorder()
        contended = InstrumentedLock(recorder, "contended")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with contended:
                held.set()
                release.wait(5)

        worker = threading.Thread(target=holder)
        worker.start()
        assert held.wait(5)
        assert contended.acquire(blocking=False) is False
        release.set()
        worker.join(5)
        # The failed acquire must not have stayed on this thread's held
        # stack, or the next acquisition would record a phantom edge.
        with InstrumentedLock(recorder, "other"):
            pass
        assert ("contended", "other") not in recorder.edges()


class TestLockOrderRecorder:
    def _acquire_pair(self, first, second):
        with first, second:
            pass

    def test_consistent_order_is_acyclic(self):
        recorder = LockOrderRecorder()
        a = InstrumentedLock(recorder, "a")
        b = InstrumentedLock(recorder, "b")
        self._acquire_pair(a, b)
        self._acquire_pair(a, b)
        assert recorder.edges() == {("a", "b"): recorder.edges()[("a", "b")]}
        recorder.assert_acyclic()

    def test_opposite_orders_form_a_cycle(self):
        recorder = LockOrderRecorder()
        a = InstrumentedLock(recorder, "a")
        b = InstrumentedLock(recorder, "b")
        self._acquire_pair(a, b)
        self._acquire_pair(b, a)
        assert recorder.find_cycle() is not None
        with pytest.raises(LockOrderViolation, match="cycle"):
            recorder.assert_acyclic()

    def test_three_lock_cycle(self):
        recorder = LockOrderRecorder()
        a = InstrumentedLock(recorder, "a")
        b = InstrumentedLock(recorder, "b")
        c = InstrumentedLock(recorder, "c")
        self._acquire_pair(a, b)
        self._acquire_pair(b, c)
        self._acquire_pair(c, a)
        with pytest.raises(LockOrderViolation, match="cycle"):
            recorder.assert_acyclic()

    def test_edges_record_the_acquisition_site(self):
        recorder = LockOrderRecorder()
        a = InstrumentedLock(recorder, "a")
        b = InstrumentedLock(recorder, "b")
        self._acquire_pair(a, b)
        ((edge, site),) = recorder.edges().items()
        assert edge == ("a", "b")
        assert "test_runtime_locks.py" in site


class TestInstrumentedBroker:
    """End-to-end: real broker, instrumented locks, re-entrant callback."""

    def test_callback_subscribing_from_worker_thread(self, lock_discipline, space):
        """A subscriber that subscribes from its callback — the exact
        re-entry the PR-4 fix (RLock in ThreadedBroker) exists for.
        Under instrumentation a non-reentrant lock here would raise
        LockOrderViolation instead of deadlocking the worker."""
        matcher = ThematicMatcher(ThematicMeasure(space))
        with ThreadedBroker(matcher) as broker:
            late_handles = []

            def resubscribe(delivery):
                late_handles.append(broker.subscribe(SUBSCRIPTION))

            broker.subscribe(SUBSCRIPTION, resubscribe)
            broker.publish(EVENT)
            assert broker.flush(timeout=30)
            assert len(late_handles) == 1
        # lock_discipline's teardown asserts the observed order graph
        # is acyclic; reaching this line means no re-entry violation.

    def test_broker_locks_are_instrumented(self, lock_discipline, space):
        matcher = ThematicMatcher(ThematicMeasure(space))
        with ThreadedBroker(matcher) as broker:
            assert isinstance(broker._lock, InstrumentedLock)
            assert broker._lock.reentrant
            broker.publish(EVENT)
            assert broker.flush(timeout=30)
