"""Smoke-run the example scripts: the README's promises must execute.

The heavyweight evaluation demo is exercised separately by the
benchmarks; here we run the interactive-speed examples end to end in a
subprocess, exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "smart_city.py",
    "overlay_network.py",
    "energy_management.py",
    "wire_protocol.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    for script in FAST_EXAMPLES + ["evaluation_demo.py"]:
        assert script in present
