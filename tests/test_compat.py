"""Every deprecation shim warns, forwards, and rejects typos.

:mod:`repro._compat` is the consolidated home for legacy aliases; the
table in its docstring is the contract and this suite is its test: each
listed alias must emit exactly one :class:`DeprecationWarning` pointing
at the caller and still do the thing its replacement does.
"""

import warnings

import pytest

from repro._compat import config_from_kwargs, warn_deprecated
from repro.broker.broker import (
    BrokerMetrics,
    SubscriberHandle,
    ThematicBroker,
    dispatch_delivery,
)
from repro.broker.config import BrokerConfig
from repro.broker.sharded import ShardedBroker
from repro.broker.threaded import ThreadedBroker
from repro.core.engine import (
    EngineConfig,
    SubscriptionHandle,
    ThematicEventEngine,
)
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ExactMeasure


def one_deprecation(caught):
    """The single DeprecationWarning in ``caught`` (asserts exactly one)."""
    hits = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(hits) == 1, [str(w.message) for w in caught]
    return hits[0]


def matcher():
    return ThematicMatcher(ExactMeasure(), threshold=0.5)


class TestHelpers:
    def test_warn_deprecated_emits_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_deprecated("old thing is deprecated", stacklevel=1)
        assert "old thing" in str(one_deprecation(caught).message)

    def test_config_from_kwargs_without_kwargs_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = config_from_kwargs(
                None, EngineConfig(), ("prefilter",), {}, scope="engine"
            )
        assert config == EngineConfig()

    def test_config_from_kwargs_overlays_and_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = config_from_kwargs(
                None,
                EngineConfig(),
                ("prefilter",),
                {"prefilter": False},
                scope="engine",
            )
        assert config.prefilter is False
        message = str(one_deprecation(caught).message)
        assert "pass an EngineConfig instead" in message

    def test_unknown_keyword_is_a_typeerror_not_a_warning(self):
        with pytest.raises(TypeError, match="prefiltre"):
            config_from_kwargs(
                None,
                EngineConfig(),
                ("prefilter",),
                {"prefiltre": False},
                scope="engine",
            )


class TestSubscriberHandleAlias:
    def test_warns_and_is_a_subscription_handle(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            handle = SubscriberHandle(3, None)
        assert "SubscriptionHandle" in str(one_deprecation(caught).message)
        assert isinstance(handle, SubscriptionHandle)
        assert handle.subscriber_id == 3


class TestDispatchDeliveryAlias:
    def test_warns_and_still_delivers(self):
        metrics = BrokerMetrics()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            handle = SubscriberHandle(1, None)
            caught.clear()
            dispatch_delivery(metrics, handle, "delivery")
        assert "ReliableDelivery" in str(one_deprecation(caught).message)
        assert handle.drain() == ["delivery"]
        assert metrics.deliveries == 1


class TestEngineKwargShims:
    def test_legacy_engine_kwarg_warns_and_forwards(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = ThematicEventEngine(matcher(), prefilter=False)
        assert "EngineConfig" in str(one_deprecation(caught).message)
        assert engine.config.prefilter is False

    def test_new_sublinear_knobs_ride_the_same_shim(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = ThematicEventEngine(
                matcher(), ann_recall_target=0.5
            )
        one_deprecation(caught)
        assert engine.config.ann_recall_target == 0.5

    def test_engine_typo_raises(self):
        with pytest.raises(TypeError, match="engine options now live on"):
            ThematicEventEngine(matcher(), prefilterr=True)

    def test_config_object_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ThematicEventEngine(matcher(), EngineConfig(prefilter=False))


class TestBrokerKwargShims:
    @pytest.mark.parametrize(
        "broker_cls", [ThematicBroker, ThreadedBroker, ShardedBroker]
    )
    def test_legacy_replay_capacity_warns_and_forwards(self, broker_cls):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            broker = broker_cls(matcher(), replay_capacity=7)
        try:
            assert "BrokerConfig" in str(one_deprecation(caught).message)
            assert broker.config.replay_capacity == 7
        finally:
            close = getattr(broker, "close", None)
            if close is not None:
                close()

    def test_engine_knobs_reach_broker_config_through_the_shim(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            broker = ThematicBroker(matcher(), prefilter_mode="exact")
        one_deprecation(caught)
        assert broker.config.prefilter_mode == "exact"

    def test_broker_typo_raises(self):
        with pytest.raises(TypeError, match="broker options now live on"):
            ThematicBroker(matcher(), replay_capacityy=7)

    def test_config_object_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ThematicBroker(matcher(), BrokerConfig(replay_capacity=7))
