"""Tests for the CEP engine over uncertain matches."""

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern, Step
from repro.cep.predicates import Eq
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import ThematicMeasure

ENERGY_EVENT = parse_event(
    "({energy, appliances},"
    " {type: increased energy consumption event, device: computer,"
    "  area: town, office: room 112})"
)
PARKING_EVENT = parse_event(
    "({transport},"
    " {type: parking space occupied event, status: occupied, city: galway,"
    "  zone: city centre})"
)
ENERGY_SUB = parse_subscription(
    "({power}, {type= increased energy usage event~, device~= laptop~})"
)
PARKING_SUB = parse_subscription(
    "({transport}, {type= parking space occupied event~, status= occupied})"
)
NEUTRAL_EVENT = parse_event(
    "({environment}, {type: rainfall measurement event,"
    " measurement unit: millimetre, sensor: sensor 4242})"
)


@pytest.fixture()
def engine(space):
    return CEPEngine(ThematicMatcher(ThematicMeasure(space)))


class TestEvery:
    def test_single_step_fires_per_match(self, engine):
        seen = []
        engine.register(Pattern.every("a", ENERGY_SUB), seen.append)
        engine.feed(ENERGY_EVENT)
        engine.feed(PARKING_EVENT)
        engine.feed(ENERGY_EVENT)
        assert len(seen) == 2
        assert all(ce.binding("a").event == ENERGY_EVENT for ce in seen)

    def test_filters_gate_matches(self, engine):
        pattern = Pattern.every("a", ENERGY_SUB, Eq("area", "village"))
        completions = []
        engine.register(pattern, completions.append)
        engine.feed(ENERGY_EVENT)
        assert completions == []

    def test_probability_attached(self, engine):
        engine.register(Pattern.every("a", ENERGY_SUB))
        events = engine.feed(ENERGY_EVENT)
        assert events
        assert 0.0 <= events[0].probability <= 1.0

    def test_min_probability_threshold(self, engine):
        pattern = Pattern(
            steps=(Step("a", ENERGY_SUB),), min_probability=1.01
        )
        engine.register(pattern)
        assert engine.feed(ENERGY_EVENT) == []


class TestSequence:
    def make_pattern(self, within=None):
        return Pattern(
            steps=(Step("energy", ENERGY_SUB), Step("parking", PARKING_SUB)),
            within=within,
        )

    def test_in_order_completion(self, engine):
        engine.register(self.make_pattern())
        assert engine.feed(ENERGY_EVENT) == []
        completions = engine.feed(PARKING_EVENT)
        assert len(completions) == 1
        complex_event = completions[0]
        assert complex_event.binding("energy").event == ENERGY_EVENT
        assert complex_event.binding("parking").event == PARKING_EVENT
        assert complex_event.first_sequence == 0
        assert complex_event.last_sequence == 1

    def test_wrong_order_no_completion(self, engine):
        engine.register(self.make_pattern())
        engine.feed(PARKING_EVENT)
        assert engine.feed(ENERGY_EVENT) == []

    def test_window_expiry(self, engine):
        engine.register(self.make_pattern(within=1))
        engine.feed(ENERGY_EVENT)
        engine.feed(NEUTRAL_EVENT)  # advances the logical clock only
        assert engine.feed(PARKING_EVENT) == []

    def test_within_window_completes(self, engine):
        engine.register(self.make_pattern(within=2))
        engine.feed(ENERGY_EVENT)
        engine.feed(NEUTRAL_EVENT)
        assert engine.feed(PARKING_EVENT)

    def test_every_opens_multiple_instances(self, engine):
        engine.register(self.make_pattern())
        engine.feed(ENERGY_EVENT)
        engine.feed(ENERGY_EVENT)
        completions = engine.feed(PARKING_EVENT)
        assert len(completions) == 2

    def test_probability_is_conjunction(self, engine):
        engine.register(self.make_pattern())
        engine.feed(ENERGY_EVENT)
        (complex_event,) = engine.feed(PARKING_EVENT)
        p_energy = complex_event.binding("energy").probability
        p_parking = complex_event.binding("parking").probability
        assert abs(complex_event.probability - p_energy * p_parking) < 1e-9


class TestRegistry:
    def test_unregister(self, engine):
        handle = engine.register(Pattern.every("a", ENERGY_SUB))
        assert engine.unregister(handle)
        assert engine.feed(ENERGY_EVENT) == []
        assert not engine.unregister(handle)

    def test_pattern_count_and_emitted(self, engine):
        handle = engine.register(Pattern.every("a", ENERGY_SUB))
        assert engine.pattern_count() == 1
        engine.feed(ENERGY_EVENT)
        assert handle.emitted == 1
