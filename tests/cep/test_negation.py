"""Tests for negated guard steps in CEP patterns."""

import pytest

from repro.cep.engine import CEPEngine
from repro.cep.patterns import Pattern, Step
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.semantics.measures import CachedMeasure, ThematicMeasure

SURGE = parse_event(
    "({power}, {type: increased energy usage event, zone: city centre,"
    " device: lamp})"
)
OUTAGE = parse_event(
    "({power}, {type: power outage event, zone: city centre, grid: west})"
)
RECOVERY = parse_event(
    "({power}, {type: power recovery event, zone: city centre, grid: west})"
)
NEUTRAL = parse_event(
    "({environment}, {type: rainfall measurement event,"
    " measurement unit: millimetre, sensor: sensor 4242})"
)

SURGE_SUB = parse_subscription("({power}, {type= increased energy usage event~})")
OUTAGE_SUB = parse_subscription("({power}, {type= power outage event})")
RECOVERY_SUB = parse_subscription("({power}, {type= power recovery event})")


@pytest.fixture()
def engine(space):
    return CEPEngine(ThematicMatcher(CachedMeasure(ThematicMeasure(space))))


def absence_pattern(within=None):
    """Surge then recovery with NO outage in between."""
    return Pattern(
        steps=(
            Step("surge", SURGE_SUB),
            Step("no_outage", OUTAGE_SUB, negated=True),
            Step("recovery", RECOVERY_SUB),
        ),
        within=within,
    )


class TestValidation:
    def test_negated_cannot_open(self):
        with pytest.raises(ValueError, match="negated"):
            Pattern(steps=(Step("a", OUTAGE_SUB, negated=True),
                           Step("b", SURGE_SUB)))

    def test_negated_cannot_close(self):
        with pytest.raises(ValueError, match="negated"):
            Pattern(steps=(Step("a", SURGE_SUB),
                           Step("b", OUTAGE_SUB, negated=True)))

    def test_within_counts_positive_steps(self):
        # Two positive steps -> within=1 is the legal minimum even with
        # a guard between them.
        Pattern(
            steps=(Step("a", SURGE_SUB),
                   Step("g", OUTAGE_SUB, negated=True),
                   Step("b", RECOVERY_SUB)),
            within=1,
        )


class TestAbsenceSemantics:
    def test_completes_without_guard_event(self, engine):
        fired = []
        engine.register(absence_pattern(), fired.append)
        engine.feed(SURGE)
        engine.feed(NEUTRAL)
        engine.feed(RECOVERY)
        assert len(fired) == 1
        assert set(fired[0].bindings) == {"surge", "recovery"}

    def test_guard_event_kills_instance(self, engine):
        fired = []
        engine.register(absence_pattern(), fired.append)
        engine.feed(SURGE)
        engine.feed(OUTAGE)     # the forbidden event
        engine.feed(RECOVERY)
        assert fired == []

    def test_new_instance_after_kill(self, engine):
        fired = []
        engine.register(absence_pattern(), fired.append)
        engine.feed(SURGE)
        engine.feed(OUTAGE)
        engine.feed(SURGE)      # a fresh instance
        engine.feed(RECOVERY)
        assert len(fired) == 1

    def test_guard_does_not_bind(self, engine):
        fired = []
        engine.register(absence_pattern(), fired.append)
        engine.feed(SURGE)
        engine.feed(RECOVERY)
        assert "no_outage" not in fired[0].bindings

    def test_probability_over_positive_steps_only(self, engine):
        fired = []
        engine.register(absence_pattern(), fired.append)
        engine.feed(SURGE)
        engine.feed(RECOVERY)
        (complex_event,) = fired
        expected = (
            complex_event.binding("surge").probability
            * complex_event.binding("recovery").probability
        )
        assert abs(complex_event.probability - expected) < 1e-9

    def test_window_still_applies(self, engine):
        fired = []
        engine.register(absence_pattern(within=1), fired.append)
        engine.feed(SURGE)
        engine.feed(NEUTRAL)
        engine.feed(RECOVERY)   # 2 events after start > within=1
        assert fired == []
