"""Unit and property tests for probability combination ([26])."""

import itertools
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cep.uncertainty import at_least, conjunction, disjunction, negation

probs = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=6,
)


class TestBasics:
    def test_conjunction_product(self):
        assert math.isclose(conjunction([0.5, 0.5]), 0.25)

    def test_conjunction_empty(self):
        assert conjunction([]) == 1.0

    def test_disjunction_noisy_or(self):
        assert math.isclose(disjunction([0.5, 0.5]), 0.75)

    def test_disjunction_empty(self):
        assert disjunction([]) == 0.0

    def test_negation(self):
        assert negation(0.3) == 0.7

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            conjunction([1.5])
        with pytest.raises(ValueError):
            negation(-0.1)


class TestAtLeast:
    def test_k_zero_certain(self):
        assert at_least([0.1, 0.2], 0) == 1.0

    def test_k_above_count_impossible(self):
        assert at_least([0.9], 2) == 0.0

    def test_k_one_equals_disjunction(self):
        values = [0.2, 0.5, 0.7]
        assert math.isclose(at_least(values, 1), disjunction(values))

    def test_k_all_equals_conjunction(self):
        values = [0.2, 0.5, 0.7]
        assert math.isclose(at_least(values, 3), conjunction(values))

    def test_matches_enumeration(self):
        values = [0.3, 0.6, 0.8, 0.1]
        for k in range(len(values) + 1):
            expected = 0.0
            for outcome in itertools.product([0, 1], repeat=len(values)):
                if sum(outcome) >= k:
                    weight = 1.0
                    for hit, p in zip(outcome, values, strict=True):
                        weight *= p if hit else (1 - p)
                    expected += weight
            assert math.isclose(at_least(values, k), expected, abs_tol=1e-9)


class TestProperties:
    @given(probs)
    def test_conjunction_bounds(self, values):
        assert 0.0 <= conjunction(values) <= 1.0

    @given(probs)
    def test_disjunction_bounds(self, values):
        assert 0.0 <= disjunction(values) <= 1.0

    @given(probs)
    def test_conjunction_below_min(self, values):
        if values:
            assert conjunction(values) <= min(values) + 1e-12

    @given(probs)
    def test_disjunction_above_max(self, values):
        if values:
            assert disjunction(values) >= max(values) - 1e-12

    @given(probs, st.integers(0, 7))
    def test_at_least_monotone_in_k(self, values, k):
        assert at_least(values, k) + 1e-9 >= at_least(values, k + 1)

    @given(probs)
    def test_de_morgan(self, values):
        # P(at least one) = 1 - P(none)
        assert math.isclose(
            disjunction(values),
            1.0 - conjunction([1.0 - p for p in values]),
            abs_tol=1e-9,
        )
