"""Tests for the pattern AST and mini-language."""

import pytest

from repro.cep.patterns import Pattern, Step, parse_pattern
from repro.cep.predicates import Eq
from repro.core.language import ParseError, parse_subscription

SUB = parse_subscription("({energy}, {type= energy consumption event~})")


class TestStep:
    def test_valid(self):
        step = Step("a", SUB)
        assert step.name == "a"

    def test_bad_name(self):
        with pytest.raises(ValueError):
            Step("9bad", SUB)


class TestPattern:
    def test_every_factory(self):
        pattern = Pattern.every("a", SUB, Eq("area", "town"))
        assert len(pattern.steps) == 1
        assert pattern.steps[0].filters

    def test_needs_steps(self):
        with pytest.raises(ValueError):
            Pattern(steps=())

    def test_unique_names(self):
        with pytest.raises(ValueError, match="unique"):
            Pattern(steps=(Step("a", SUB), Step("a", SUB)))

    def test_within_must_fit_steps(self):
        with pytest.raises(ValueError):
            Pattern(steps=(Step("a", SUB), Step("b", SUB)), within=0)


class TestParse:
    def test_single_step(self):
        pattern = parse_pattern(
            "every a = ({energy}, {type= energy consumption event~})"
        )
        assert len(pattern.steps) == 1
        assert pattern.steps[0].name == "a"
        assert pattern.within is None

    def test_sequence_with_within(self):
        pattern = parse_pattern(
            "every a = ({power}, {type= surge event~})"
            " -> b = ({power}, {type= outage event~}) within 50"
        )
        assert [s.name for s in pattern.steps] == ["a", "b"]
        assert pattern.within == 50

    def test_requires_every(self):
        with pytest.raises(ParseError):
            parse_pattern("a = ({x}, {y= z})")

    def test_bad_step_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("every = ({x}, {y= z})")

    def test_subscription_semantics_preserved(self):
        pattern = parse_pattern("every a = ({t}, {device~= laptop~})")
        predicate = pattern.steps[0].subscription.predicates[0]
        assert predicate.approx_attribute and predicate.approx_value
