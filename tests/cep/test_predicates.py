"""Tests for CEP value filters."""

from repro.cep.predicates import Between, Custom, Eq, Ge, Gt, Le, Lt, Ne, OneOf
from repro.core.events import Event

EVENT = Event.create(
    payload={
        "type": "increased energy consumption event",
        "reading": 21.5,
        "status": "Occupied",
        "count": "7",
    }
)


class TestEq:
    def test_string_normalized(self):
        assert Eq("status", "occupied").matches(EVENT)

    def test_mismatch(self):
        assert not Eq("status", "free").matches(EVENT)

    def test_missing_attribute(self):
        assert not Eq("nope", "x").matches(EVENT)

    def test_numeric(self):
        assert Eq("reading", 21.5).matches(EVENT)

    def test_ne(self):
        assert Ne("status", "free").matches(EVENT)
        assert not Ne("status", "occupied").matches(EVENT)


class TestNumeric:
    def test_gt_ge_lt_le(self):
        assert Gt("reading", 21.0).matches(EVENT)
        assert not Gt("reading", 21.5).matches(EVENT)
        assert Ge("reading", 21.5).matches(EVENT)
        assert Lt("reading", 22.0).matches(EVENT)
        assert Le("reading", 21.5).matches(EVENT)

    def test_numeric_strings_coerced(self):
        assert Gt("count", 5).matches(EVENT)

    def test_non_numeric_value_fails(self):
        assert not Gt("status", 0).matches(EVENT)

    def test_between(self):
        assert Between("reading", low=20, high=22).matches(EVENT)
        assert not Between("reading", low=0, high=10).matches(EVENT)


class TestOneOf:
    def test_string_choices_normalized(self):
        assert OneOf("status", choices=("free", "OCCUPIED")).matches(EVENT)

    def test_numeric_choices(self):
        assert OneOf("reading", choices=(21.5, 30)).matches(EVENT)

    def test_no_match(self):
        assert not OneOf("status", choices=("free",)).matches(EVENT)


def test_custom_filter():
    assert Custom("reading", predicate=lambda v: v > 20).matches(EVENT)
    assert not Custom("reading", predicate=lambda v: v > 30).matches(EVENT)
