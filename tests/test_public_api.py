"""Pin the supported public API surface.

``repro.api`` is the deprecation-policy boundary: the snapshot below is
the reviewed list of supported names. If this test fails you either
added a name (extend the snapshot — deliberately, in the same PR) or
removed/renamed one (that needs a deprecation shim first).
"""

import dataclasses
import warnings

import repro
import repro.api

#: The reviewed public surface, sorted. Update deliberately.
PUBLIC_API = [
    "ApproxNeighborIndex",
    "AttributeValue",
    "BatchMatchResult",
    "BrokerConfig",
    "BrokerMetrics",
    "BrokerOverlay",
    "CEPEngine",
    "Calibration",
    "CallbackFault",
    "CircuitBreaker",
    "Clock",
    "CountingIndex",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "DegradedMode",
    "DegradedPolicy",
    "Delivery",
    "DeliveryPolicy",
    "DistributionalVectorSpace",
    "DowngradeEvent",
    "DurabilityPolicy",
    "EngineConfig",
    "EngineStats",
    "Event",
    "ExactMatcher",
    "ExactMeasure",
    "FakeClock",
    "FaultInjector",
    "FaultPlan",
    "FaultyCallbackError",
    "HashSharding",
    "KillFault",
    "MatchEngine",
    "MatchResult",
    "MetricsRegistry",
    "MonotonicClock",
    "NonThematicMatcher",
    "NonThematicMeasure",
    "OverlayMetrics",
    "ParametricVectorSpace",
    "Pattern",
    "PersistentScoreStore",
    "PrecomputedMeasure",
    "PrecomputedScoreTable",
    "Predicate",
    "ReliableDelivery",
    "RewritingMatcher",
    "ScorerFault",
    "ShardedBroker",
    "SimulatedCrash",
    "SizeBalancedSharding",
    "SparseVector",
    "Subscription",
    "SubscriptionHandle",
    "ThematicBroker",
    "ThematicEventEngine",
    "ThematicMatcher",
    "ThematicMeasure",
    "Thesaurus",
    "ThreadedBroker",
    "Workload",
    "WorkloadConfig",
    "build_corpus",
    "build_workload",
    "compare_broker_throughput",
    "default_corpus",
    "default_thesaurus",
    "format_event",
    "format_subscription",
    "generate_seed_events",
    "parse_event",
    "parse_pattern",
    "parse_subscription",
    "run_fault_injection",
]

#: Frozen-config constructor contracts, field names in declaration
#: order (= positional __init__ order). Checked both at runtime (below)
#: and statically by ``repro lint`` rule RL502, so adding, removing, or
#: reordering a config field is always a reviewed snapshot edit here.
CONFIG_FIELDS = {
    "BrokerConfig": [
        "replay_capacity",
        "max_queue",
        "shards",
        "strategy",
        "max_batch",
        "linger",
        "workers",
        "delivery",
        "degraded",
        "dead_letter_capacity",
        "executor",
        "durability",
        "prefilter_mode",
        "ann_recall_target",
        "score_store_path",
        "warm_on_start",
    ],
    "DurabilityPolicy": [
        "directory",
        "fsync",
        "fsync_batch_records",
        "snapshot_every",
    ],
    "KillFault": [
        "at",
        "mode",
    ],
    "EngineConfig": [
        "prefilter",
        "private_pipeline",
        "span_tags",
        "degraded",
        "prefilter_mode",
        "ann_recall_target",
        "score_store_path",
        "warm_on_start",
    ],
    "DeliveryPolicy": [
        "deadline",
        "max_retries",
        "backoff_base",
        "backoff_multiplier",
        "backoff_cap",
        "jitter",
        "breaker_threshold",
        "breaker_reset",
        "seed",
    ],
    "DegradedPolicy": [
        "latency_budget",
        "cooldown",
        "trip_after",
    ],
}


class TestApiSnapshot:
    def test_facade_matches_snapshot(self):
        assert repro.api.__all__ == PUBLIC_API

    def test_snapshot_is_sorted_and_unique(self):
        assert PUBLIC_API == sorted(PUBLIC_API)
        assert len(PUBLIC_API) == len(set(PUBLIC_API))

    def test_every_name_is_importable(self):
        for name in PUBLIC_API:
            assert hasattr(repro.api, name), name

    def test_facade_exports_nothing_extra(self):
        public = {
            name
            for name in vars(repro.api)
            if not name.startswith("_") and name != "repro"
        }
        assert public == set(PUBLIC_API)

    def test_top_level_package_is_a_subset(self):
        """``repro``'s convenience exports must stay within the facade."""
        assert set(repro.__all__) - {"__version__"} <= set(PUBLIC_API)

    def test_facade_imports_cleanly_without_warnings(self):
        import importlib

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            importlib.reload(repro.api)


class TestConfigFieldSnapshot:
    def test_config_fields_match_snapshot(self):
        for cls_name, expected in CONFIG_FIELDS.items():
            cls = getattr(repro.api, cls_name)
            actual = [f.name for f in dataclasses.fields(cls)]
            assert actual == expected, (
                f"{cls_name} fields drifted from the CONFIG_FIELDS "
                f"snapshot: {actual} != {expected}"
            )

    def test_pinned_configs_are_frozen(self):
        """A mutable config would make the field contract meaningless."""
        for cls_name in CONFIG_FIELDS:
            cls = getattr(repro.api, cls_name)
            assert cls.__dataclass_params__.frozen, cls_name


class TestDeprecatedAliases:
    def test_subscriber_handle_alias_warns_but_works(self):
        from repro.broker.broker import SubscriberHandle
        from repro.core.engine import SubscriptionHandle

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            handle = SubscriberHandle(7, None)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert isinstance(handle, SubscriptionHandle)
        assert handle.subscriber_id == 7
        assert handle.subscription_id == 7
