"""Shared fixtures: expensive substrates are built once per session.

Hypothesis profiles: ``ci`` (fixed seed via ``derandomize``, a bounded
example budget, no deadline flakiness on shared runners) for pull
requests, ``ci-main`` (same but a deeper example budget) for pushes to
main. CI selects one through the ``HYPOTHESIS_PROFILE`` environment
variable; local runs keep hypothesis defaults (random seed, shrinking
database) unless the variable is set.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.evaluation import WorkloadConfig, build_workload
from repro.knowledge import default_corpus, default_thesaurus
from repro.semantics import ParametricVectorSpace

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci-main",
    derandomize=True,
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def thesaurus():
    return default_thesaurus()


@pytest.fixture(scope="session")
def corpus():
    return default_corpus()


@pytest.fixture(scope="session")
def space(corpus):
    return ParametricVectorSpace(corpus)


@pytest.fixture(scope="session")
def tiny_workload():
    return build_workload(WorkloadConfig.tiny())


@pytest.fixture()
def lock_discipline():
    """Instrument every lock ``repro.*`` code constructs during the test.

    Same-thread re-acquisition of a non-reentrant lock raises
    :class:`repro.analysis.runtime.LockOrderViolation` at the acquire
    site (the PR-4 deadlock, as a stack trace instead of a hang), and
    teardown asserts the observed acquisition orders form no cycle.
    Opt in per test, or suite-wide with ``REPRO_LOCK_CHECK=1``.
    """
    from repro.analysis.runtime import LockOrderRecorder, instrument_repro_locks

    recorder = LockOrderRecorder()
    with instrument_repro_locks(recorder):
        yield recorder
    recorder.assert_acyclic()


if os.environ.get("REPRO_LOCK_CHECK") == "1":

    @pytest.fixture(autouse=True)
    def _lock_discipline_everywhere(lock_discipline):
        yield
