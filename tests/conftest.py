"""Shared fixtures: expensive substrates are built once per session."""

import pytest

from repro.evaluation import WorkloadConfig, build_workload
from repro.knowledge import default_corpus, default_thesaurus
from repro.semantics import ParametricVectorSpace


@pytest.fixture(scope="session")
def thesaurus():
    return default_thesaurus()


@pytest.fixture(scope="session")
def corpus():
    return default_corpus()


@pytest.fixture(scope="session")
def space(corpus):
    return ParametricVectorSpace(corpus)


@pytest.fixture(scope="session")
def tiny_workload():
    return build_workload(WorkloadConfig.tiny())
