"""Smart-city scenario: Alice and the street lights (Section 2.1).

Alice, in the town-hall planning department, wants the energy usage of
street lights during peak electricity usage. Sensors come from different
manufacturers, so semantically identical events arrive with different
vocabularies ("energy consumption" vs "electricity usage" vs "power
usage"). One thematic subscription plus a CEP filter covers all vendors —
the paper's alternative to maintaining a rule per vocabulary variant.

Run:  python examples/smart_city.py
"""

from repro import (
    CEPEngine,
    ParametricVectorSpace,
    Pattern,
    ThematicBroker,
    ThematicMatcher,
    ThematicMeasure,
    default_corpus,
    parse_event,
    parse_subscription,
)
from repro.cep import Eq
from repro.semantics import CachedMeasure

#: The same physical situation reported by three different vendors.
VENDOR_EVENTS = [
    parse_event(
        "({energy, light, city},"
        " {type: energy consumption event, device: street lamp,"
        "  zone: city centre, consumption peak: true})"
    ),
    parse_event(
        "({energy, city},"
        " {type: electricity usage event, device: lamp,"
        "  district: city centre, consumption peak: true})"
    ),
    parse_event(
        "({power, urban planning},"
        " {type: power usage event, appliance: light fixture,"
        "  zone: city centre, consumption peak: false})"
    ),
    # A red herring from another domain entirely.
    parse_event(
        "({transport, city},"
        " {type: parking space occupied event, status: occupied,"
        "  zone: city centre})"
    ),
]


def main() -> None:
    space = ParametricVectorSpace(default_corpus())
    matcher = ThematicMatcher(CachedMeasure(ThematicMeasure(space)))

    # Alice's single thematic subscription (vs one rule per vendor).
    alice = parse_subscription(
        "({energy, city},"
        " {type= energy consumption event~, device~= street light~})"
    )
    print("Alice subscribes:", alice)
    print()

    # The broker decouples Alice from the sensors (space decoupling).
    broker = ThematicBroker(matcher)
    inbox = broker.subscribe(alice)

    # The CEP layer adds the value filter the paper's EPL rule has:
    # a.area.consumptionPeak = 'true'.
    engine = CEPEngine(matcher)
    peaks = []
    engine.register(
        Pattern.every("a", alice, Eq("consumption peak", "true")),
        peaks.append,
    )
    broker.subscribe(alice, lambda delivery: engine.feed(delivery.event))

    for event in VENDOR_EVENTS:
        broker.publish(event)

    print(f"published {broker.metrics.published} events "
          f"({broker.metrics.deliveries} deliveries)")
    print()
    print("deliveries to Alice (semantic matching across vendors):")
    for delivery in inbox.drain():
        print(f"  score={delivery.score:.3f}  "
              f"type={delivery.event.value('type')!r}")
    print()
    print("CEP detections during consumption peaks:")
    for complex_event in peaks:
        event = complex_event.binding("a").event
        print(f"  P={complex_event.probability:.3f}  "
              f"type={event.value('type')!r}")
    print()
    assert len(peaks) == 2, "expected the two peak events from vendors 1-2"
    print("-> one thematic rule replaced a rule per vendor vocabulary.")


if __name__ == "__main__":
    main()
