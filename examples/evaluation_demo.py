"""Miniature Section-5 evaluation: baseline vs a thematic theme grid.

Builds the tiny evaluation workload (Figure 6 pipeline at test scale),
runs the non-thematic baseline and a small thematic theme grid, and
renders Figure-7/9-style heatmaps in the terminal. The full-size
reproduction lives in benchmarks/ — this demo finishes in ~a minute.

Run:  python examples/evaluation_demo.py
"""

from repro.evaluation import (
    ThemeGridConfig,
    WorkloadConfig,
    build_workload,
    format_heatmap,
    run_baseline,
    run_grid,
)


def main() -> None:
    workload = build_workload(WorkloadConfig.tiny())
    print("workload:", workload.summary())
    print()

    baseline = run_baseline(workload)
    print(f"non-thematic baseline: F1={baseline.f1:.1%} "
          f"throughput={baseline.events_per_second:.0f} events/sec")
    print("(paper, full scale: 62% F1 at 202 events/sec)")
    print()

    grid = run_grid(
        workload,
        grid_config=ThemeGridConfig(
            event_sizes=(1, 3, 7, 15),
            subscription_sizes=(1, 3, 7, 15),
            samples_per_cell=2,
        ),
        progress=lambda line: print("  " + line),
    )
    print()
    print("thematic F1 (x100), * = beats the baseline  [paper: Figure 7]")
    print(format_heatmap(grid, value="f1", baseline=baseline.f1))
    print()
    print("thematic throughput, events/sec  [paper: Figure 9]")
    print(format_heatmap(
        grid, value="throughput", baseline=baseline.events_per_second,
        cell_format="{:>5.0f}",
    ))
    print()
    print(f"cells above baseline F1: {grid.fraction_above(baseline.f1):.0%} "
          f"(paper: >70%)")
    best = grid.best()
    print(f"best cell: event={best.event_size} sub={best.subscription_size} "
          f"F1={best.mean_f1:.1%}")


if __name__ == "__main__":
    main()
