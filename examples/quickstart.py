"""Quickstart: match one heterogeneous event against one subscription.

Reproduces the paper's running example (Section 3): the event says
"increased energy consumption event" / "computer", the subscription asks
for "increased energy usage event~" / "laptop~" — different words, same
meaning. Thematic matching bridges the vocabulary gap.

Run:  python examples/quickstart.py
"""

from repro import (
    NonThematicMeasure,
    ParametricVectorSpace,
    ThematicMatcher,
    ThematicMeasure,
    default_corpus,
    parse_event,
    parse_subscription,
)


def main() -> None:
    # 1. Build the distributional substrate once (index the corpus).
    space = ParametricVectorSpace(default_corpus())
    matcher = ThematicMatcher(ThematicMeasure(space), k=3)

    # 2. The paper's event and subscription, verbatim (Sections 3.3-3.4).
    event = parse_event(
        "({energy, appliances, building},"
        " {type: increased energy consumption event,"
        "  measurement unit: kilowatt hour, device: computer,"
        "  office: room 112})"
    )
    subscription = parse_subscription(
        "({power, computers},"
        " {type= increased energy usage event~, device~= laptop~,"
        "  office= room 112})"
    )
    print("event:        ", event)
    print("subscription: ", subscription)
    print(f"degree of approximation: {subscription.degree_of_approximation():.0%}")
    print()

    # 3. Match: top-1 mapping plus alternatives (top-k mode).
    result = matcher.match(subscription, event)
    assert result is not None
    print("top-1 mapping sigma*:")
    print(result.explain())
    print()
    for rank, mapping in enumerate(result.alternatives, start=2):
        print(f"top-{rank} alternative: {mapping.describe(result.matrix)}"
              f"  P={mapping.probability:.3f}")
    print()
    print(f"match? {result.is_match(matcher.threshold)} "
          f"(score {result.score:.3f} >= threshold {matcher.threshold})")
    print()

    # 4. An irrelevant event is rejected.
    parking = parse_event(
        "({transport}, {type: parking space occupied event,"
        " street: main street, city: santander, spot: 4})"
    )
    print(f"score against a parking event: "
          f"{matcher.score(subscription, parking):.3f} -> no match")
    print()

    # 5. Compare with the non-thematic baseline on an ambiguous pair:
    # 'increased' vs 'decreased' look related in the full space (they
    # co-occur in generic prose) but not under an energy theme.
    nonthematic = NonThematicMeasure(space)
    thematic = ThematicMeasure(space)
    theme = ("energy", "energy use", "electrical industry",
             "communications", "information technology")
    print("relatedness('increased', 'decreased'):")
    print(f"  full space (non-thematic): "
          f"{nonthematic.score('increased', (), 'decreased', ()):.3f}")
    print(f"  under an energy/IT theme:  "
          f"{thematic.score('increased', theme, 'decreased', theme):.3f}")
    print("relatedness('increased', 'rising'):")
    print(f"  full space (non-thematic): "
          f"{nonthematic.score('increased', (), 'rising', ()):.3f}")
    print(f"  under an energy/IT theme:  "
          f"{thematic.score('increased', theme, 'rising', theme):.3f}")


if __name__ == "__main__":
    main()
