"""Wire protocol + threaded broker + two-phase prefilter, end to end.

A producer process would serialize events to JSON; the broker side
deserializes, prefilters candidates, and matches asynchronously. This
example runs the whole path in-process: JSON in, deliveries out, with
the prefilter statistics showing how much semantic work was avoided.

Run:  python examples/wire_protocol.py
"""

from repro import (
    ParametricVectorSpace,
    ThematicMatcher,
    ThematicMeasure,
    default_corpus,
    parse_subscription,
)
from repro.broker import ThreadedBroker
from repro.core import TwoPhaseMatcher, dumps, loads
from repro.core.codec import event_to_dict
from repro.datasets import SeedConfig, generate_seed_events
from repro.semantics import CachedMeasure

THEME = ("energy", "environment", "land transport", "communications")


def main() -> None:
    space = ParametricVectorSpace(default_corpus())
    matcher = ThematicMatcher(CachedMeasure(ThematicMeasure(space)))

    subscriptions = [
        parse_subscription(
            "({energy, communications},"
            " {type~= increased energy usage event~, device~= computer~})"
        ),
        parse_subscription(
            "({transport, city}, {type~= parking space occupied event~})"
        ),
        parse_subscription(
            "({environment}, {type~= high noise event~,"
            " measurement unit= decibel})"
        ),
    ]

    # --- the wire: events arrive as JSON strings ---------------------------
    seeds = generate_seed_events(SeedConfig(count=40, seed=3))
    wire_messages = [
        dumps(event.with_theme(THEME)) for event in seeds
    ]
    print(f"{len(wire_messages)} JSON events on the wire; first one:")
    print(" ", wire_messages[0][:100], "...")
    print()

    # --- broker side: prefilter + async matching ----------------------------
    two_phase = TwoPhaseMatcher(matcher, space)
    sub_ids = {two_phase.add(sub): i for i, sub in enumerate(subscriptions)}
    deliveries: list[tuple[int, float, str]] = []

    with ThreadedBroker(matcher) as broker:
        # The threaded broker demonstrates sync decoupling for the same
        # stream; the prefilter path shows the phase-1 savings.
        inboxes = [broker.subscribe(sub) for sub in subscriptions]
        for message in wire_messages:
            event = loads(message)
            broker.publish(event)                     # async path
            for sub_id, result in two_phase.match_event(event):  # indexed path
                deliveries.append(
                    (sub_ids[sub_id], result.score,
                     str(result.event.value("type")))
                )
        broker.flush(timeout=120)
        async_counts = [len(inbox.drain()) for inbox in inboxes]

    print("deliveries per subscription (indexed two-phase vs full scan):")
    for i, sub in enumerate(subscriptions):
        mine = [d for d in deliveries if d[0] == i]
        note = "" if len(mine) == async_counts[i] else (
            "  <- the lossy semantic prefilter dropped a borderline match"
            " (the documented speed/recall trade; tune prefilter_threshold)"
        )
        print(f"  sub {i}: indexed={len(mine)}  full scan={async_counts[i]}{note}")
        for _, score, type_value in mine[:2]:
            print(f"     score={score:.3f} type={type_value!r}")
    stats = two_phase.stats
    print()
    print(f"prefilter: {stats.pairs_considered} pairs considered, "
          f"{stats.pruned_total()} pruned ({stats.prune_rate():.0%}), "
          f"{stats.full_matches_run} full matches run")


if __name__ == "__main__":
    main()
