"""A city-scale broker overlay: space/time decoupling plus themes.

Six district brokers form a ring-with-chords overlay (networkx). Sensors
publish at their local broker; consumers subscribe wherever they live;
events flood with de-duplication. A late subscriber is caught up from
the replay buffer (time decoupling).

Run:  python examples/overlay_network.py
"""

import networkx as nx

from repro import (
    BrokerOverlay,
    ParametricVectorSpace,
    ThematicMatcher,
    ThematicMeasure,
    default_corpus,
    parse_event,
    parse_subscription,
)
from repro.semantics import CachedMeasure


DISTRICTS = ["docks", "old town", "campus", "harbour", "market", "stadium"]


def main() -> None:
    space = ParametricVectorSpace(default_corpus())

    graph = nx.cycle_graph(DISTRICTS)
    graph.add_edge("docks", "campus")     # a chord for shorter routes
    graph.add_edge("harbour", "stadium")

    overlay = BrokerOverlay(
        graph,
        lambda: ThematicMatcher(CachedMeasure(ThematicMeasure(space))),
    )
    print(f"overlay: {len(overlay.nodes())} brokers, "
          f"{graph.number_of_edges()} links")

    # A parking consumer at the stadium; publishers everywhere.
    parking_watch = parse_subscription(
        "({transport, city},"
        " {type= parking space occupied event~, zone~= city centre~})"
    )
    stadium_inbox = overlay.subscribe("stadium", parking_watch)

    events = [
        ("docks", parse_event(
            "({transport, city}, {type: parking space occupied event,"
            " status: occupied, zone: city centre})")),
        ("market", parse_event(
            "({transport, city}, {type: car park occupied event,"
            " status: taken, zone: municipality centre})")),
        ("harbour", parse_event(
            "({transport, city}, {type: garage spot taken event,"
            " status: taken, area: municipality centre})")),
        ("campus", parse_event(
            "({environment, city}, {type: high noise event,"
            " measurement unit: decibel, zone: campus})")),
    ]
    for node, event in events:
        delivered = overlay.publish(node, event)
        print(f"published at {node!r}: type={event.value('type')!r} "
              f"-> {delivered} deliveries")

    print()
    print("stadium consumer inbox:")
    for delivery in stadium_inbox.drain():
        print(f"  score={delivery.score:.3f} "
              f"type={delivery.event.value('type')!r}")

    # Time decoupling: a late consumer replays the retained events.
    late_inbox = overlay.broker("old town").subscribe(
        parking_watch, replay=True
    )
    print()
    print(f"late subscriber at 'old town' caught up on "
          f"{len(late_inbox.drain())} events via replay")

    print()
    m = overlay.metrics
    print(f"overlay metrics: injected={m.injected} hops={m.hops} "
          f"dedup={m.duplicate_suppressions} deliveries={m.deliveries}")


if __name__ == "__main__":
    main()
