"""Smart-building energy management (the LEI side of Section 5.2.1).

A facilities team registers a handful of thematic subscriptions over a
heterogeneous stream of appliance-level events generated from the
bundled IoT vocabulary (Table 3 capabilities + BLUED-style appliances).
Shows the engine API, threshold decisions, and top-k mapping inspection.

Run:  python examples/energy_management.py
"""

import itertools

from repro import (
    ParametricVectorSpace,
    ThematicEventEngine,
    ThematicMatcher,
    ThematicMeasure,
    default_corpus,
    default_thesaurus,
    parse_subscription,
)
from repro.datasets import SeedConfig, generate_seed_events
from repro.evaluation import ExpansionConfig, expand_events
from repro.semantics import CachedMeasure

BUILDING_THEME = ("energy", "energy use", "electrical industry",
                  "communications", "urban planning")


def make_event_stream(count: int):
    """Heterogeneous indoor event stream: expanded seed events."""
    seeds = [
        event
        for event in generate_seed_events(SeedConfig(count=60, seed=7))
        if event.value("device") is not None  # indoor template only
    ]
    expanded = expand_events(
        seeds,
        default_thesaurus(),
        ExpansionConfig(variants_per_seed=4, distractors_per_seed=0, seed=21),
    )
    stream = [item.event.with_theme(BUILDING_THEME) for item in expanded]
    return list(itertools.islice(stream, count))


def main() -> None:
    space = ParametricVectorSpace(default_corpus())
    # A conservative threshold: in-domain siblings (cpu usage / energy
    # consumption / memory usage) are genuinely related, so a building
    # operator who wants precision over recall raises the bar.
    matcher = ThematicMatcher(
        CachedMeasure(ThematicMeasure(space)), k=3, threshold=0.8
    )
    engine = ThematicEventEngine(matcher)

    subscriptions = {
        "computer-energy": parse_subscription(
            "({power, computers},"
            " {type~= increased energy usage event~, device~= computer~})"
        ),
        "appliance-energy": parse_subscription(
            "({power, housing},"
            " {type~= increased electricity consumption event~,"
            "  device~= fridge~})"
        ),
        "cpu-load": parse_subscription(
            "({computer systems},"
            " {type~= high processor load event~})"
        ),
    }
    hits = {name: [] for name in subscriptions}
    for name, subscription in subscriptions.items():
        themed = subscription.with_theme(
            set(subscription.theme) | {"energy", "information technology"}
        )
        engine.subscribe(themed, hits[name].append)

    stream = make_event_stream(160)
    print(f"processing {len(stream)} heterogeneous building events "
          f"against {engine.subscription_count()} subscriptions...")
    for event in stream:
        engine.process(event)

    print(f"evaluations: {engine.stats.evaluations}, "
          f"deliveries: {engine.stats.deliveries}")
    print()
    for name, results in hits.items():
        print(f"[{name}] {len(results)} matches")
        for result in results[:3]:
            event = result.event
            print(f"   score={result.score:.3f} "
                  f"type={event.value('type')!r} "
                  f"device={event.value('device') or event.value('appliance')!r}")
        if results:
            best = results[0]
            print("   top-k mappings of the first match:")
            for rank, mapping in enumerate(best.mappings(), start=1):
                print(f"     #{rank} P={mapping.probability:.3f} "
                      f"{mapping.describe(best.matrix)}")
        print()


if __name__ == "__main__":
    main()
